"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from algorithmic dead ends.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid (e.g. non power-of-two cache)."""


class CacheGeometryError(ConfigurationError):
    """Cache geometry is inconsistent (size, line size, associativity)."""


class LayoutError(ConfigurationError):
    """An array layout or padding specification is invalid."""


class TransformError(ReproError):
    """A loop transformation cannot be applied to the given nest."""


class IllegalTransformError(TransformError):
    """The transformation would violate a data dependence."""


class TileSelectionError(ReproError):
    """No admissible tile size exists for the given constraints."""


class TraceError(ReproError):
    """A reference trace could not be generated or consumed."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""


class RetryableError(ReproError):
    """A transient failure; the operation may succeed if retried.

    Raised (or injected) for failures that are plausibly environmental —
    an interrupted trace generation, a flaky I/O layer — as opposed to
    deterministic configuration errors, which retrying cannot fix.
    """


class BudgetExceededError(ReproError):
    """A per-point execution budget (wall clock or trace length) ran out.

    Not retryable by definition: re-running the same exact simulation
    would exceed the same budget. Callers degrade to the analytic model
    instead (see :mod:`repro.experiments.runner`).
    """


class StorageError(ReproError):
    """A durable write or read failed at the filesystem level (ENOSPC,
    EIO, a failed fsync). The atomic writer guarantees the *old* artifact
    is intact when this is raised — the failure is surfaced, never a torn
    file."""


class IntegrityError(ReproError):
    """A durable record failed its integrity check (checksum mismatch,
    truncated or type-mangled content). The damaged artifact is
    quarantined, never served; ``repro fsck`` reports and repairs."""


class FsckError(ReproError):
    """``repro fsck`` was pointed at something that is neither a
    checkpoint journal file nor a point-store directory."""


class LockError(StorageError):
    """An advisory file lock could not be acquired (timeout on a lock
    held by a live process, or an unbreakable stale lock)."""


class SweepInterrupted(ExperimentError):
    """A sweep drained gracefully after SIGINT/SIGTERM: in-flight points
    finished and were journaled, pending points were skipped. The
    journal is resumable; the CLI maps this to exit code 130."""

    def __init__(self, message: str, *, signum: int | None = None,
                 completed: int = 0, skipped: int = 0):
        super().__init__(message)
        self.signum = signum
        self.completed = completed
        self.skipped = skipped


class CheckpointError(ExperimentError):
    """A checkpoint journal is unusable: missing header, corrupted
    beyond the recoverable trailing line, written by a newer format
    version, or written under a different configuration fingerprint
    than the resuming run's (override with ``--resume-force``)."""


class PoolError(ExperimentError):
    """The supervised worker pool was misused (duplicate task keys,
    unusable platform) — distinct from worker *failures*, which are
    retried and quarantined rather than raised."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its convergence target."""


class ServiceError(ReproError):
    """The tile-advisor service was misconfigured or cannot serve
    (bad socket path, a second server on the same socket, a protocol
    violation on a connection)."""


class OverloadedError(ServiceError):
    """The advisor's bounded admission queue is full: the query was
    *shed*, not enqueued. Carries ``retry_after_s`` — an estimate of
    when a slot will free up — so clients can back off instead of
    hammering an overloaded backend."""

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s
