"""Shared value types used across the :mod:`repro` package.

These are small immutable dataclasses exchanged between the tile-selection
algorithms (:mod:`repro.core`), the layout machinery (:mod:`repro.layout`)
and the experiment harness (:mod:`repro.experiments`).

Conventions
-----------
Dimensions follow the paper's Fortran (column-major) view of a
``DI x DJ x DK`` array:

* ``DI`` — size of the contiguous (innermost, fastest-varying) dimension,
  i.e. the column length;
* ``DJ`` — the middle dimension (number of columns per plane);
* ``DK`` — the outer dimension (number of planes).

Tile sizes use the same orientation: ``TI`` tiles the I loop (contiguous
direction), ``TJ`` the J loop, and ``TK`` is the *array tile depth* — the
number of array planes simultaneously held in cache, not a tiled loop.
All sizes are measured in array **elements**, never bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TileSize",
    "ArrayTile",
    "PadResult",
    "SelectionResult",
]


@dataclass(frozen=True, slots=True)
class TileSize:
    """An iteration-tile size ``(TI, TJ)`` for the inner two loops.

    ``ti`` and ``tj`` are the numbers of I and J iterations per tile.
    """

    ti: int
    tj: int

    def __post_init__(self) -> None:
        if self.ti < 1 or self.tj < 1:
            raise ValueError(f"tile dimensions must be positive, got {self}")

    @property
    def iterations(self) -> int:
        """Number of iteration points per (I, J) tile slab."""
        return self.ti * self.tj

    def as_tuple(self) -> tuple[int, int]:
        return (self.ti, self.tj)


@dataclass(frozen=True, slots=True)
class ArrayTile:
    """A (possibly untrimmed) array tile ``TI x TJ x TK`` (Section 2.2).

    The array tile is the region of the *data* space that must remain in
    cache while a ``TI' x TJ' x (N-2)`` block of iterations executes; its
    depth ``tk`` counts array planes.
    """

    ti: int
    tj: int
    tk: int

    def __post_init__(self) -> None:
        if self.ti < 1 or self.tj < 1 or self.tk < 1:
            raise ValueError(f"array tile dimensions must be positive, got {self}")

    @property
    def footprint(self) -> int:
        """Number of elements the array tile occupies in cache."""
        return self.ti * self.tj * self.tk

    def trimmed(self, mi: int, mj: int) -> TileSize | None:
        """Trim by the stencil margins to obtain the iteration tile.

        Returns ``None`` when trimming leaves a non-positive dimension
        (the paper models this as an infinite-cost tile).
        """
        ti, tj = self.ti - mi, self.tj - mj
        if ti < 1 or tj < 1:
            return None
        return TileSize(ti, tj)


@dataclass(frozen=True, slots=True)
class PadResult:
    """Outcome of a padding heuristic (GcdPad / Pad, Section 3.4).

    ``tile`` is the trimmed iteration tile; ``di_p``/``dj_p`` are the
    padded lower array dimensions. ``di``/``dj`` record the originals so
    overhead can be computed without outside context.
    """

    tile: TileSize
    di: int
    dj: int
    di_p: int
    dj_p: int

    def __post_init__(self) -> None:
        if self.di_p < self.di or self.dj_p < self.dj:
            raise ValueError(f"padded dims must not shrink: {self}")

    @property
    def pad_i(self) -> int:
        return self.di_p - self.di

    @property
    def pad_j(self) -> int:
        return self.dj_p - self.dj

    def memory_overhead(self, dk: int) -> float:
        """Fractional memory increase for a ``DI x DJ x DK`` array."""
        base = self.di * self.dj * dk
        padded = self.di_p * self.dj_p * dk
        return (padded - base) / base


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Uniform result of any tile-selection strategy.

    Every strategy reachable through
    :func:`repro.core.selector.select` — the paper's transformations
    and the related-work baselines alike — honours this field contract
    (``select`` normalizes and enforces it; see
    ``tests/test_selector_contract.py``):

    ==============  =====================================================
    field           contract
    ==============  =====================================================
    ``strategy``    the **registry** name the strategy was invoked
                    under (``STRATEGIES`` key), never an internal alias
    ``tile``        ``TileSize`` (both dims >= 1, neither exceeding the
                    interior iteration span) when the strategy tiles;
                    ``None`` when it declines to (Orig, GcdPadNT, or a
                    degenerate geometry)
    ``di_p``        padded I extent; always ``>= di`` (padding never
                    shrinks an array)
    ``dj_p``        padded J extent; always ``>= dj``
    ``cost``        the Section 2.3 cost-per-iteration estimate;
                    **finite iff tiled** — untiled results carry
                    ``inf``, tiled results never do
    ``array_tile``  the untrimmed data-space tile when the strategy
                    derived one (Tile, Euc3D, LRW, ECS, WolfLam3);
                    ``None`` for padding-first strategies
    ==============  =====================================================
    """

    strategy: str
    tile: TileSize | None
    di_p: int
    dj_p: int
    cost: float = field(default=float("inf"))
    array_tile: ArrayTile | None = None

    @property
    def tiled(self) -> bool:
        return self.tile is not None
