"""Wire protocol and typed request/answer model for the tile advisor.

The advisor speaks newline-delimited JSON (JSONL) over a unix socket or
stdio: one request object per line in, one response object per line
out. Requests and responses carry a client-chosen ``id`` so responses
can be matched under pipelining; ordering is not guaranteed.

Request::

    {"v": 1, "id": 7, "op": "ask", "kernel": "JACOBI", "n": 300,
     "strategy": "GcdPad", "deadline_s": 0.5}

``op`` is ``ask`` (the advisor query), ``status`` (health/readiness
snapshot) or ``ping``. Responses::

    {"v": 1, "id": 7, "ok": true, "answer": {..., "provenance": "exact",
     "degraded": false, "reason": null, "latency_ms": 3.1}}
    {"v": 1, "id": 8, "ok": false, "error": {"code": "overloaded",
     "message": "...", "retry_after_s": 0.8}}

Provenance tiers, best to worst:

* ``exact`` — a fully simulated point (from the store or a fresh
  simulation that finished within the deadline).
* ``extrapolated`` — exact steady-state K-plane extrapolation
  (bit-identical miss counts, flagged for transparency).
* ``analytic`` — the paper's capacity miss model; always paired with
  ``degraded: true`` and a ``reason`` (``deadline``, ``breaker_open``,
  ``quarantined``, ``budget``, ``draining``, ``cold``).

Error codes: ``overloaded`` (typed shed, carries ``retry_after_s``),
``bad_request`` (malformed/invalid query), ``internal`` (unexpected
server-side failure; the connection stays usable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["PROTOCOL_VERSION", "PROVENANCE_TIERS", "AdvisorQuery",
           "AdvisorAnswer", "parse_request", "ok_response",
           "error_response", "provenance_of", "encode", "decode"]

PROTOCOL_VERSION = 1

#: Best-to-worst answer quality; every answer is labeled with one.
PROVENANCE_TIERS = ("exact", "extrapolated", "analytic")

#: Queries may not ask for deadlines beyond this: the service exists to
#: answer interactively, and an unbounded wait is a resource leak.
MAX_DEADLINE_S = 300.0

_OPS = ("ask", "status", "ping")


def provenance_of(point) -> str:
    """The provenance tier of a :class:`PointResult`-shaped object."""
    if point.degraded:
        return "analytic"
    if point.extrapolated:
        return "extrapolated"
    return "exact"


@dataclass(frozen=True)
class AdvisorQuery:
    """One validated advisor question: best tile/pad for this point."""

    kernel: str
    n: int
    strategy: str = "GcdPad"
    deadline_s: float | None = None
    qid: object = None

    @property
    def key(self) -> tuple:
        """Coalescing/store identity: queries with equal keys share work."""
        return (self.kernel, self.strategy, self.n)

    @classmethod
    def from_payload(cls, obj: dict) -> "AdvisorQuery":
        """Build and validate a query from a decoded request object.

        Raises :class:`~repro.errors.ConfigurationError` on anything
        malformed — the server maps that to a ``bad_request`` response,
        never a dropped connection.
        """
        from repro.core.selector import STRATEGIES
        from repro.experiments.runner import _STENCILS

        kernel = obj.get("kernel")
        if not isinstance(kernel, str) or kernel not in _STENCILS:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; valid: {sorted(_STENCILS)}")
        strategy = obj.get("strategy", "GcdPad")
        if not isinstance(strategy, str) or strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; "
                f"valid: {', '.join(sorted(STRATEGIES))}")
        n = obj.get("n")
        if isinstance(n, bool) or not isinstance(n, int) or n <= 0:
            raise ConfigurationError(
                f"n must be a positive integer, got {n!r}")
        deadline = obj.get("deadline_s")
        if deadline is not None:
            if isinstance(deadline, bool) \
                    or not isinstance(deadline, (int, float)) \
                    or not 0 < deadline <= MAX_DEADLINE_S:
                raise ConfigurationError(
                    f"deadline_s must be in (0, {MAX_DEADLINE_S:g}] "
                    f"seconds, got {deadline!r}")
            deadline = float(deadline)
        return cls(kernel=kernel, n=n, strategy=strategy,
                   deadline_s=deadline, qid=obj.get("id"))

    def to_payload(self) -> dict:
        body: dict = {"v": PROTOCOL_VERSION, "op": "ask",
                      "kernel": self.kernel, "strategy": self.strategy,
                      "n": self.n}
        if self.deadline_s is not None:
            body["deadline_s"] = self.deadline_s
        if self.qid is not None:
            body["id"] = self.qid
        return body


@dataclass(frozen=True)
class AdvisorAnswer:
    """One labeled answer: the recommendation plus its provenance."""

    kernel: str
    strategy: str
    n: int
    nk: int
    tile: tuple | None
    di_p: int
    dj_p: int
    l1_rate: float
    l2_rate: float
    mflops: float
    #: exact | extrapolated | analytic — see :data:`PROVENANCE_TIERS`.
    provenance: str
    #: True iff the answer fell back to the analytic model.
    degraded: bool
    #: Why the answer is degraded (None for exact/extrapolated).
    reason: str | None
    #: Where the service found it: store | simulated | analytic.
    source: str
    latency_ms: float

    @classmethod
    def from_point(cls, point, *, source: str, latency_s: float,
                   reason: str | None = None) -> "AdvisorAnswer":
        tier = provenance_of(point)
        return cls(kernel=point.kernel, strategy=point.strategy,
                   n=point.n, nk=point.nk,
                   tile=tuple(point.tile) if point.tile else None,
                   di_p=point.di_p, dj_p=point.dj_p,
                   l1_rate=point.l1_rate, l2_rate=point.l2_rate,
                   mflops=point.mflops, provenance=tier,
                   degraded=point.degraded,
                   reason=reason if point.degraded else None,
                   source=source,
                   latency_ms=round(1000.0 * latency_s, 3))

    def to_payload(self) -> dict:
        return {"kernel": self.kernel, "strategy": self.strategy,
                "n": self.n, "nk": self.nk,
                "tile": list(self.tile) if self.tile else None,
                "di_p": self.di_p, "dj_p": self.dj_p,
                "l1_rate": self.l1_rate, "l2_rate": self.l2_rate,
                "mflops": self.mflops, "provenance": self.provenance,
                "degraded": self.degraded, "reason": self.reason,
                "source": self.source, "latency_ms": self.latency_ms}

    @classmethod
    def from_payload(cls, obj: dict) -> "AdvisorAnswer":
        tile = obj.get("tile")
        return cls(kernel=obj["kernel"], strategy=obj["strategy"],
                   n=obj["n"], nk=obj["nk"],
                   tile=tuple(tile) if tile else None,
                   di_p=obj["di_p"], dj_p=obj["dj_p"],
                   l1_rate=obj["l1_rate"], l2_rate=obj["l2_rate"],
                   mflops=obj["mflops"], provenance=obj["provenance"],
                   degraded=obj["degraded"], reason=obj.get("reason"),
                   source=obj.get("source", "?"),
                   latency_ms=obj.get("latency_ms", 0.0))


# ----------------------------------------------------------------------
# line-level encode/decode
# ----------------------------------------------------------------------

def encode(obj: dict) -> bytes:
    """One protocol object as one JSONL line (bytes, newline included)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one line into a protocol object; raises ConfigurationError."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(f"request is not valid JSON: {exc}") \
            from None
    if not isinstance(obj, dict):
        raise ConfigurationError(
            f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def parse_request(line: bytes | str) -> dict:
    """Decode one request line and validate its envelope (v, op)."""
    obj = decode(line)
    v = obj.get("v", PROTOCOL_VERSION)
    if v != PROTOCOL_VERSION:
        raise ConfigurationError(
            f"unsupported protocol version {v!r} "
            f"(this server speaks v{PROTOCOL_VERSION})")
    op = obj.get("op", "ask")
    if op not in _OPS:
        raise ConfigurationError(
            f"unknown op {op!r}; valid: {', '.join(_OPS)}")
    obj["op"] = op
    return obj


def ok_response(qid, answer: "AdvisorAnswer | dict") -> dict:
    body = answer.to_payload() if isinstance(answer, AdvisorAnswer) \
        else answer
    return {"v": PROTOCOL_VERSION, "id": qid, "ok": True, "answer": body}


def error_response(qid, code: str, message: str, *,
                   retry_after_s: float | None = None) -> dict:
    err: dict = {"code": code, "message": message}
    if retry_after_s is not None:
        err["retry_after_s"] = round(retry_after_s, 3)
    return {"v": PROTOCOL_VERSION, "id": qid, "ok": False, "error": err}
