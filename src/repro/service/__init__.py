"""The resilient tile-advisor service (``repro serve`` / ``repro ask``).

Answers "what tile/pad for my kernel?" queries at interactive latency
by composing the repo's existing layers — the sharded
:class:`~repro.perf.store.PointStore` (warm answers), the supervised
worker pool (fresh exact simulation) and the paper's analytic miss
model (the always-available floor) — behind a deadline-budgeted
degradation ladder with request coalescing, bounded admission, and a
circuit breaker around the simulation backend.

Package map:

* :mod:`repro.service.api` — JSONL wire protocol, typed
  query/answer model, provenance tiers.
* :mod:`repro.service.core` — :class:`AdvisorService`, the asyncio
  core (coalescing, shedding, deadlines, degradation).
* :mod:`repro.service.backend` — the single-threaded batching bridge
  to the supervised pool.
* :mod:`repro.service.breaker` — the circuit breaker.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``repro serve`` process and the ``repro ask`` client.
"""

from repro.service.api import (AdvisorAnswer, AdvisorQuery,
                               PROVENANCE_TIERS, provenance_of)
from repro.service.backend import BackendResult, PoolBackend
from repro.service.breaker import CircuitBreaker
from repro.service.core import AdvisorService

__all__ = ["AdvisorAnswer", "AdvisorQuery", "AdvisorService",
           "BackendResult", "CircuitBreaker", "PoolBackend",
           "PROVENANCE_TIERS", "provenance_of"]
