"""`repro ask`: the advisor's command-line client.

A thin synchronous JSONL client: connect to the serve socket, pipeline
one request per query, collect one response per request (matched by
id, so server-side reordering is fine), render them. Used
interactively, from scripts, and by the CI service-smoke job — which
is why it retries the initial connect (the server may still be
binding) and never conflates "no response" with "error response":
every query's fate is reported explicitly.
"""

from __future__ import annotations

import logging
import socket
import time

from repro.errors import ServiceError
from repro.service import api
from repro.service.api import AdvisorAnswer, AdvisorQuery

log = logging.getLogger(__name__)

__all__ = ["ask", "request"]


def request(socket_path, payloads: list[dict], *, timeout: float = 30.0,
            connect_wait: float = 5.0) -> list[dict]:
    """Send protocol objects, return one response object per request.

    Raises :class:`~repro.errors.ServiceError` if the server cannot be
    reached within ``connect_wait`` or stops responding before every
    request is answered — a lost query is an error, never a silence.
    """
    deadline = time.monotonic() + connect_wait
    sock = None
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(str(socket_path))
            break
        except OSError as exc:
            sock.close()
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"cannot reach advisor at {socket_path}: {exc}") \
                    from exc
            time.sleep(0.05)
    try:
        sock.sendall(b"".join(api.encode(p) for p in payloads))
        sock.shutdown(socket.SHUT_WR)
        raw = b""
        responses: dict = {}
        order = [p.get("id") for p in payloads]
        while len(responses) < len(payloads):
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                raise ServiceError(
                    f"advisor stopped responding after "
                    f"{len(responses)}/{len(payloads)} answers "
                    f"(timeout {timeout}s)") from None
            if not chunk:
                raise ServiceError(
                    f"advisor closed the connection after "
                    f"{len(responses)}/{len(payloads)} answers")
            raw += chunk
            while b"\n" in raw:
                line, raw = raw.split(b"\n", 1)
                if not line.strip():
                    continue
                obj = api.decode(line)
                responses[obj.get("id")] = obj
        return [responses[qid] for qid in order]
    finally:
        sock.close()


def ask(socket_path, queries: list[AdvisorQuery], *, timeout: float = 30.0,
        connect_wait: float = 5.0) -> list[dict]:
    """Ask a batch of queries; responses in query order."""
    payloads = []
    for i, q in enumerate(queries):
        body = q.to_payload()
        body["id"] = q.qid if q.qid is not None else i
        payloads.append(body)
    return request(socket_path, payloads, timeout=timeout,
                   connect_wait=connect_wait)


def format_response(resp: dict) -> str:
    """One human line per response."""
    if resp.get("ok") and "answer" in resp:
        a = AdvisorAnswer.from_payload(resp["answer"])
        tile = f"{a.tile[0]}x{a.tile[1]}" if a.tile else "untiled"
        line = (f"{a.kernel}/{a.strategy} N={a.n}: tile {tile}, "
                f"pad -> {a.di_p}x{a.dj_p}, L1 {a.l1_rate:.2f}%, "
                f"{a.mflops:.1f} MFlops  [{a.provenance}"
                f"{', degraded: ' + a.reason if a.degraded else ''}]"
                f"  ({a.latency_ms:.0f} ms)")
        return line
    if resp.get("ok"):
        return str({k: v for k, v in resp.items() if k not in ("v", "ok")})
    err = resp.get("error", {})
    retry = err.get("retry_after_s")
    suffix = f" (retry in {retry:.1f}s)" if retry is not None else ""
    return (f"error[{err.get('code', '?')}]: "
            f"{err.get('message', '?')}{suffix}")
