"""The advisor's exact-simulation backend: one thread, one pool.

Cold queries that the service admits are handed to a
:class:`PoolBackend`, which runs them through the existing supervised
worker pool (:func:`repro.resilience.pool.run_supervised`) — the same
machinery that gives sweeps crash/hang/timeout isolation, retries and
quarantine. Everything pool-related happens on **one** dedicated
backend thread:

* the event-bus span bookkeeping inside ``run_supervised`` is not
  thread-safe across concurrent callers, and
* a single consumer lets us batch: while one batch simulates, newly
  admitted jobs pile up in the queue and the next batch takes up to
  ``2 * workers`` of them at once, so pool startup cost amortizes and
  the workers stay busy.

Results are delivered through each job's callback **on the backend
thread** (the service marshals back onto its event loop). The store
write happens *before* the callback fires — so by the time the service
drops a key from its in-flight map, the answer is already durable, and
a duplicate query racing that transition finds either the in-flight
entry or a warm store hit, never a gap.

Worker fault injection (``REPRO_FAULT_WORKER``) is inherited from the
environment exactly as for sweeps, which is what lets the chaos tests
kill and hang the service's workers.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import StorageError
from repro.obs import metrics

log = logging.getLogger(__name__)

__all__ = ["BackendResult", "PoolBackend"]


@dataclass(frozen=True)
class BackendResult:
    """Terminal state of one backend job.

    ``payload`` is a validated point payload (possibly ``degraded`` if
    the worker itself fell back to the analytic model under its
    budget); ``quarantined`` means every attempt died/hung/was mangled
    and there is no payload. ``seconds`` is the job's amortized share
    of its batch's wall time (feeds the retry-after estimate).
    """

    payload: dict | None
    quarantined: bool = False
    reason: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.payload is not None and not self.quarantined


@dataclass
class _Job:
    key: tuple
    callback: Callable[[BackendResult], None]


class PoolBackend:
    """Single-threaded, batching bridge from the service to the pool."""

    def __init__(self, cfg, *, store=None, workers: int = 2,
                 point_timeout: float | None = None, budget=None,
                 chunk_size: int | None = None, extrapolate: bool = False,
                 max_batch: int | None = None):
        from repro.experiments.runner import config_fingerprint
        from repro.resilience.pool import PoolPolicy

        self.cfg = cfg
        self.store = store
        self.fingerprint = config_fingerprint(cfg)
        self.budget = budget
        self.chunk_size = chunk_size
        self.extrapolate = extrapolate
        self.policy = PoolPolicy(workers=workers,
                                 point_timeout=point_timeout)
        self.max_batch = max_batch or 2 * workers
        self._queue: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> "PoolBackend":
        self._thread = threading.Thread(target=self._loop,
                                        name="advisor-backend", daemon=True)
        self._thread.start()
        return self

    def submit(self, key: tuple,
               callback: Callable[[BackendResult], None]) -> None:
        """Enqueue one simulation; ``callback`` fires exactly once.

        The callback runs on the backend thread — marshal it yourself.
        After :meth:`close`, jobs are refused immediately with a
        ``draining`` result instead of being silently dropped.
        """
        if self._closed:
            callback(BackendResult(None, reason="draining"))
            return
        self._queue.put(_Job(tuple(key), callback))

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop accepting work, finish the running batch, drain the rest.

        Every queued-but-unstarted job still gets its callback (with a
        ``draining`` result) — an accepted query is never left hanging.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():  # pragma: no cover - wedged pool
                log.warning("advisor backend did not drain within %ss",
                            timeout)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        stop = False
        while not stop:
            job = self._queue.get()
            if job is None:
                break
            jobs = [job]
            while len(jobs) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    stop = True
                    break
                jobs.append(nxt)
            self._run_batch(jobs)
        # Drain whatever never started: refuse, don't drop.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                self._deliver(job, BackendResult(None, reason="draining"))

    def _run_batch(self, jobs: list[_Job]) -> None:
        from repro.experiments.runner import _check_payload, _pool_point_task
        from repro.resilience.pool import run_supervised

        # Coalescing upstream guarantees distinct keys; drop dupes
        # defensively rather than letting the pool raise on them.
        seen: dict[tuple, _Job] = {}
        for j in jobs:
            if j.key in seen:
                self._deliver(j, BackendResult(
                    None, reason="duplicate in-flight key"))
            else:
                seen[j.key] = j
        batch = list(seen.values())
        tasks = [(j.key, (j.key[0], j.key[1], j.key[2], self.cfg,
                          self.budget, self.chunk_size, self.extrapolate))
                 for j in batch]
        t0 = time.monotonic()
        try:
            outcomes = run_supervised(_pool_point_task, tasks, self.policy,
                                      validate=_check_payload,
                                      span_name="service_point")
        except Exception as exc:  # pool misuse/platform failure
            log.exception("advisor backend batch failed")
            for j in batch:
                self._deliver(j, BackendResult(
                    None, quarantined=True, reason=f"backend error: {exc}"))
            return
        per_job = (time.monotonic() - t0) / max(1, len(batch))
        metrics.observe("repro.service.batch_points", float(len(batch)))
        for j, out in zip(batch, outcomes):
            if out.ok:
                payload = out.payload
                if self.store is not None and not payload.get("degraded"):
                    # Durable *before* the in-flight entry is released;
                    # a failed write costs reuse, never the answer.
                    try:
                        self.store.put(self.fingerprint, j.key, payload)
                    except StorageError as exc:
                        log.warning("advisor store write failed for %r "
                                    "(%s); serving the answer anyway",
                                    j.key, exc)
                        metrics.inc("repro.service.store_write_failures")
                self._deliver(j, BackendResult(payload, seconds=per_job))
            elif out.skipped:
                self._deliver(j, BackendResult(None, reason="draining"))
            else:
                reason = out.failures[-1] if out.failures else "quarantined"
                self._deliver(j, BackendResult(None, quarantined=True,
                                               reason=reason,
                                               seconds=per_job))

    @staticmethod
    def _deliver(job: _Job, result: BackendResult) -> None:
        try:
            job.callback(result)
        except Exception:  # pragma: no cover - defensive
            log.exception("advisor backend callback failed for %r", job.key)
