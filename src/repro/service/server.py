"""`repro serve`: the long-running advisor process.

Transport is JSONL over a unix socket (``--socket PATH``) or stdio
(``--stdio``); see :mod:`repro.service.api` for the protocol. Each
connection may pipeline requests: every line becomes its own asyncio
task, responses are written (id-tagged) as they complete.

Lifecycle, wired into the existing robustness fabric:

* :func:`repro.resilience.signals.graceful_drain` — the first
  SIGINT/SIGTERM stops accepting connections, lets every in-flight
  request finish (each is deadline-bounded, so the drain is too),
  refuses queued simulations as ``draining`` and exits 0. A second
  signal aborts with the conventional 130.
* :class:`repro.obs.status.StatusPublisher` — the run ledger's
  ``status.json`` doubles as the health/readiness snapshot: queue
  depth, shed/coalesce counts, breaker state, per-tier answer counts
  (``repro watch <run>`` follows it live).
* The run ledger itself comes for free: the CLI dispatches ``serve``
  inside ``obs.session``, so ``--run-dir`` records the serve session's
  manifest, merged trace and metrics like any sweep.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import pathlib
import sys

from repro.errors import OverloadedError, ReproError, ServiceError
from repro.service import api
from repro.service.api import AdvisorQuery
from repro.service.backend import PoolBackend
from repro.service.breaker import CircuitBreaker
from repro.service.core import AdvisorService

log = logging.getLogger(__name__)

__all__ = ["serve"]

_POLL_S = 0.05

#: Extra grace beyond the largest request deadline when draining.
_DRAIN_SLACK_S = 2.0


def serve(*, socket_path=None, stdio: bool = False, cfg=None, store=None,
          deadline_s: float = 2.0, queue_limit: int = 16,
          workers: int = 2, point_timeout: float | None = None,
          budget=None, chunk_size: int | None = None,
          extrapolate: bool = False, breaker: CircuitBreaker | None = None,
          status=None) -> int:
    """Run the advisor until EOF (stdio) or SIGINT/SIGTERM (socket)."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import open_store
    from repro.resilience.signals import graceful_drain

    if (socket_path is None) == (not stdio):
        raise ServiceError("serve needs exactly one transport: "
                           "--socket PATH or --stdio")
    cfg = cfg or ExperimentConfig()
    store = open_store(store)
    backend = PoolBackend(cfg, store=store, workers=workers,
                          point_timeout=point_timeout, budget=budget,
                          chunk_size=chunk_size,
                          extrapolate=extrapolate).start()
    service = AdvisorService(backend, cfg=cfg, store=store,
                             breaker=breaker, deadline_s=deadline_s,
                             queue_limit=queue_limit)
    try:
        with graceful_drain() as drain:
            try:
                return asyncio.run(_serve_async(
                    service, backend, socket_path=socket_path, stdio=stdio,
                    drain=drain, status=status))
            except KeyboardInterrupt:
                log.warning("second signal: aborting the drain")
                return 130
    finally:
        backend.close()


async def _serve_async(service: AdvisorService, backend: PoolBackend, *,
                       socket_path, stdio: bool, drain, status) -> int:
    requests: set[asyncio.Task] = set()
    max_deadline = [service.deadline_s]

    # ------------------------------------------------------------------
    async def handle_request(line: bytes, writer, wlock) -> None:
        qid = None
        try:
            obj = api.parse_request(line)
            qid = obj.get("id")
            op = obj["op"]
            if op == "ping":
                resp = {"v": api.PROTOCOL_VERSION, "id": qid, "ok": True,
                        "pong": True}
            elif op == "status":
                resp = {"v": api.PROTOCOL_VERSION, "id": qid, "ok": True,
                        "status": service.status()}
            else:
                query = AdvisorQuery.from_payload(obj)
                max_deadline[0] = max(max_deadline[0],
                                      query.deadline_s or 0.0)
                answer = await service.ask(query)
                resp = api.ok_response(qid, answer)
        except OverloadedError as exc:
            resp = api.error_response(qid, "overloaded", str(exc),
                                      retry_after_s=exc.retry_after_s)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            resp = api.error_response(qid, "bad_request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("advisor request failed")
            resp = api.error_response(qid, "internal",
                                      f"{type(exc).__name__}: {exc}")
        async with wlock:
            writer.write(api.encode(resp))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    async def handle_connection(reader, writer) -> None:
        wlock = asyncio.Lock()
        mine: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    handle_request(line, writer, wlock))
                for pool in (mine, requests):
                    pool.add(task)
                    task.add_done_callback(pool.discard)
            if mine:
                await asyncio.gather(*mine, return_exceptions=True)
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    server = None
    stdio_task = None
    if stdio:
        reader, writer = await _stdio_streams()
        stdio_task = asyncio.create_task(handle_connection(reader, writer))
    else:
        path = pathlib.Path(socket_path)
        _clear_stale_socket(path)
        try:
            server = await asyncio.start_unix_server(handle_connection,
                                                     path=str(path))
        except OSError as exc:
            raise ServiceError(f"cannot listen on {path}: {exc}") from exc
        log.info("advisor listening on %s", path)

    _publish(status, service, force=True)
    try:
        while True:
            if drain.requested:
                log.info("drain requested (%s): closing the listener",
                         drain.signal_name())
                break
            if stdio_task is not None and stdio_task.done():
                break
            await asyncio.sleep(_POLL_S)
            _publish(status, service)

        # Stop accepting, then let bounded work finish: every pending
        # request is deadline-budgeted, so the drain is too.
        if server is not None:
            server.close()
            await server.wait_closed()
        service.begin_drain()
        await asyncio.to_thread(backend.close)
        waiting = {t for t in requests if not t.done()}
        if stdio_task is not None and not stdio_task.done():
            waiting.add(stdio_task)
        if waiting:
            done, stragglers = await asyncio.wait(
                waiting, timeout=max_deadline[0] + _DRAIN_SLACK_S)
            for t in stragglers:  # pragma: no cover - wedged request
                t.cancel()
        drain.completed = service.answered
    finally:
        if server is not None:
            server.close()
            with contextlib.suppress(OSError):
                pathlib.Path(socket_path).unlink()
        _publish(status, service, force=True)
    log.info("advisor drained: %d accepted, %d answered, %d shed, "
             "%d coalesced", service.accepted, service.answered,
             service.shed, service.coalesced)
    return 0


# ----------------------------------------------------------------------
def _publish(status, service: AdvisorService, force: bool = False) -> None:
    if status is None:
        return
    status.done = service.answered
    status.degraded = service.tiers["analytic"]
    status.update_extra(service=service.status())
    status.publish(force=force)


def _clear_stale_socket(path: pathlib.Path) -> None:
    """Unlink a dead server's leftover socket; refuse a live one."""
    if not path.exists():
        return
    import socket

    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.25)
    try:
        probe.connect(str(path))
    except OSError:
        log.warning("removing stale advisor socket %s", path)
        with contextlib.suppress(OSError):
            path.unlink()
    else:
        raise ServiceError(f"{path}: another advisor is already serving")
    finally:
        probe.close()


async def _stdio_streams():
    """Asyncio reader/writer over this process's stdin/stdout."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
    w_transport, w_protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout)
    writer = asyncio.StreamWriter(w_transport, w_protocol, None, loop)
    return reader, writer
