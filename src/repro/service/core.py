"""`AdvisorService`: deadline-budgeted, tiered tile advice.

The degradation ladder, best answer first:

1. **Warm** — the sharded :class:`~repro.perf.store.PointStore` has a
   validated entry: served immediately with ``exact`` (or
   ``extrapolated``) provenance. Degraded points are never stored, so
   a store hit is never degraded.
2. **Simulated within deadline** — a cold query is admitted to the
   supervised pool backend; if the simulation lands inside the
   request's deadline budget, the waiter gets the exact answer.
3. **Analytic** — the paper's capacity miss model, served with
   ``degraded: true`` and a reason, whenever the exact path can't
   answer in time: deadline expiry, open circuit breaker, quarantined
   simulation, backend drain. The analytic model is microseconds of
   arithmetic, so *every* accepted query is answered within its
   deadline — the ladder trades provenance, never availability.

Identical in-flight points **coalesce**: the first cold query submits
the simulation, later ones await the same shared future. The future is
awaited through ``asyncio.shield``, so a waiter being cancelled (a
client disconnecting) or timing out never cancels the shared work —
the simulation completes, the store warms, everyone else still wins.

Admission is **bounded**: at most ``queue_limit`` distinct cold keys
may be in flight. Beyond that the query is shed with a typed
:class:`~repro.errors.OverloadedError` carrying a retry-after estimate
(an EWMA of recent per-point simulation time) — explicit back-pressure
instead of unbounded buffering. Coalesced waiters ride existing slots
and are never shed.

Everything here runs on one asyncio event loop; backend completions
are marshalled onto it with ``call_soon_threadsafe``. The in-flight
entry for a key is removed only *after* the backend has made the
result durable, so a duplicate query racing the store write sees
either the in-flight future or the store hit.
"""

from __future__ import annotations

import asyncio
import logging
import time

from repro.errors import OverloadedError
from repro.obs import events, metrics
from repro.service.api import AdvisorAnswer, AdvisorQuery, provenance_of
from repro.service.backend import BackendResult
from repro.service.breaker import CircuitBreaker

log = logging.getLogger(__name__)

__all__ = ["AdvisorService"]

#: Fraction of the deadline held back for the analytic fallback (and a
#: floor/ceiling): the service must still have time to answer when the
#: exact wait comes up empty.
_ANALYTIC_RESERVE_S = 0.05

#: Seed for the retry-after estimate before any simulation finished.
_DEFAULT_SIM_S = 2.0

_EWMA_ALPHA = 0.3


class _InFlight:
    """One shared simulation: the future every coalesced waiter awaits."""

    __slots__ = ("key", "future", "submitted")

    def __init__(self, key: tuple, future: asyncio.Future):
        self.key = key
        self.future = future
        self.submitted = time.monotonic()


class AdvisorService:
    """The advisor core: ask() answers, exactly once, within deadline."""

    def __init__(self, backend, *, cfg=None, store=None,
                 breaker: CircuitBreaker | None = None,
                 deadline_s: float = 2.0, queue_limit: int = 16):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import config_fingerprint, open_store

        self.cfg = cfg or ExperimentConfig()
        self.fingerprint = config_fingerprint(self.cfg)
        self.store = open_store(store)
        self.backend = backend
        self.breaker = breaker or CircuitBreaker()
        self.deadline_s = deadline_s
        self.queue_limit = queue_limit
        self._inflight: dict[tuple, _InFlight] = {}
        self._draining = False
        self._sim_ewma: float | None = None
        self.accepted = 0
        self.answered = 0
        self.shed = 0
        self.coalesced = 0
        self.tiers = {"exact": 0, "extrapolated": 0, "analytic": 0}

    # ------------------------------------------------------------------
    async def ask(self, query: AdvisorQuery) -> AdvisorAnswer:
        """Answer one query within its deadline, or shed it typed.

        Never returns nothing: every accepted query produces exactly
        one :class:`AdvisorAnswer` (worst case ``analytic`` +
        ``degraded``); the only raise for a valid query is
        :class:`~repro.errors.OverloadedError`, *before* acceptance.
        """
        t0 = time.monotonic()
        deadline_s = query.deadline_s or self.deadline_s
        deadline = t0 + deadline_s
        key = query.key

        entry = self._inflight.get(key)
        if entry is not None:
            self.accepted += 1
            self.coalesced += 1
            metrics.inc("repro.service.coalesced")
        else:
            point = self._warm(key)
            if point is not None:
                self.accepted += 1
                return self._finish(query, point, t0, source="store")
            if self._draining:
                self.accepted += 1
                return self._analytic(query, t0, reason="draining")
            if not self.breaker.allow():
                self.accepted += 1
                return self._analytic(query, t0, reason="breaker_open")
            if len(self._inflight) >= self.queue_limit:
                self.shed += 1
                retry = self._retry_after()
                metrics.inc("repro.service.shed")
                events.emit("service_shed", kernel=query.kernel,
                            strategy=query.strategy, n=query.n,
                            queue_depth=len(self._inflight),
                            retry_after_s=round(retry, 3))
                raise OverloadedError(
                    f"admission queue full ({self.queue_limit} points in "
                    f"flight); retry in ~{retry:.1f}s",
                    retry_after_s=retry)
            self.accepted += 1
            entry = self._submit(key)

        reserve = min(_ANALYTIC_RESERVE_S, deadline_s / 4.0)
        remaining = deadline - time.monotonic() - reserve
        if remaining > 0:
            try:
                res: BackendResult = await asyncio.wait_for(
                    asyncio.shield(entry.future), remaining)
            except asyncio.TimeoutError:
                return self._analytic(query, t0, reason="deadline")
            if res.ok:
                from repro.experiments.runner import _point_from_payload

                point = _point_from_payload(res.payload)
                reason = "budget" if point.degraded else None
                return self._finish(query, point, t0, source="simulated",
                                    reason=reason)
            return self._analytic(query, t0,
                                  reason=("quarantined" if res.quarantined
                                          else res.reason or "draining"))
        return self._analytic(query, t0, reason="deadline")

    def status(self) -> dict:
        """Health/readiness snapshot (the ``status`` op, status.json)."""
        return {"accepted": self.accepted, "answered": self.answered,
                "shed": self.shed, "coalesced": self.coalesced,
                "queue_depth": len(self._inflight),
                "queue_limit": self.queue_limit,
                "draining": self._draining,
                "breaker": self.breaker.snapshot(),
                "tiers": dict(self.tiers),
                "sim_seconds_ewma": (round(self._sim_ewma, 3)
                                     if self._sim_ewma else None)}

    def begin_drain(self) -> None:
        """Stop admitting new simulations; answers degrade to analytic."""
        self._draining = True

    # ------------------------------------------------------------------
    def _warm(self, key: tuple) -> "object | None":
        """Validated store hit or None; torn/poisoned entries read as
        misses (and are quarantined by the lookup)."""
        if self.store is None:
            return None
        from repro.experiments.runner import _store_lookup

        return _store_lookup(self.store, self.fingerprint, key)

    def _submit(self, key: tuple) -> _InFlight:
        loop = asyncio.get_running_loop()
        entry = _InFlight(key, loop.create_future())
        self._inflight[key] = entry
        metrics.set_gauge("repro.service.queue_depth", len(self._inflight))

        def _done(result: BackendResult) -> None:  # backend thread
            loop.call_soon_threadsafe(self._resolve, key, result)

        self.backend.submit(key, _done)
        return entry

    def _resolve(self, key: tuple, result: BackendResult) -> None:
        """Loop-thread completion: settle the shared future, feed the
        breaker. Runs after the backend's store write, so dropping the
        in-flight entry never opens a warm/cold gap."""
        entry = self._inflight.pop(key, None)
        metrics.set_gauge("repro.service.queue_depth", len(self._inflight))
        if result.ok:
            self.breaker.record_success()
            if result.seconds > 0:
                self._sim_ewma = (result.seconds if self._sim_ewma is None
                                  else _EWMA_ALPHA * result.seconds
                                  + (1 - _EWMA_ALPHA) * self._sim_ewma)
        elif result.quarantined:
            metrics.inc("repro.service.backend_quarantined")
            self.breaker.record_failure(result.reason or "quarantined")
        if entry is not None and not entry.future.done():
            entry.future.set_result(result)

    def _retry_after(self) -> float:
        return max(0.1, self._sim_ewma or _DEFAULT_SIM_S)

    def _analytic(self, query: AdvisorQuery, t0: float,
                  *, reason: str) -> AdvisorAnswer:
        """The ladder's floor: always answers, microseconds of math."""
        from repro.experiments.runner import _analytic_point

        point = _analytic_point(query.kernel, query.strategy, query.n,
                                self.cfg)
        return self._finish(query, point, t0, source="analytic",
                            reason=reason)

    def _finish(self, query: AdvisorQuery, point, t0: float, *,
                source: str, reason: str | None = None) -> AdvisorAnswer:
        latency = time.monotonic() - t0
        answer = AdvisorAnswer.from_point(point, source=source,
                                          latency_s=latency, reason=reason)
        self.answered += 1
        tier = provenance_of(point)
        self.tiers[tier] += 1
        metrics.inc("repro.service.queries", tier=tier, source=source)
        metrics.observe("repro.service.latency_seconds", latency, tier=tier)
        events.emit("service_query", kernel=query.kernel,
                    strategy=query.strategy, n=query.n, tier=tier,
                    source=source, degraded=answer.degraded,
                    reason=answer.reason,
                    latency_ms=answer.latency_ms)
        return answer
