"""Circuit breaker around the advisor's simulation backend.

Exact simulation runs in supervised child processes; when those keep
dying (quarantines) or keep blowing their wall timeout, every further
submission is wasted work *and* added queue pressure on a backend that
is already sick. The breaker converts that failure streak into an
explicit state machine:

* **closed** — normal operation, submissions flow.
* **open** — after ``failure_threshold`` consecutive backend failures;
  submissions are refused outright and the service answers from the
  analytic model (``degraded`` + ``reason=breaker_open``) instead of
  queueing onto a corpse. Entered instantly, left only by time.
* **half-open** — after ``reset_seconds`` in open, a bounded number of
  *probe* submissions is allowed through. One success closes the
  breaker; one failure reopens it (and restarts the cooldown).

The breaker is deliberately single-threaded: every transition happens
on the service's event loop (backend completions are marshalled there
first), so there are no locks and no torn state. ``clock`` is
injectable for deterministic tests.

State is exported as the gauge ``repro.service.breaker_state``
(0 = closed, 1 = half-open, 2 = open), transitions as the counter
``repro.service.breaker`` (label ``to``) and ``breaker`` events.
"""

from __future__ import annotations

import logging
import time

from repro.errors import ConfigurationError
from repro.obs import events, metrics

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

log = logging.getLogger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(self, *, failure_threshold: int = 3,
                 reset_seconds: float = 5.0, half_open_probes: int = 1,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds <= 0:
            raise ConfigurationError(
                f"reset_seconds must be positive, got {reset_seconds}")
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.transitions = 0
        metrics.set_gauge("repro.service.breaker_state",
                          _STATE_GAUGE[CLOSED])

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; lazily moves open → half-open on cooldown."""
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_seconds:
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May one more simulation be submitted to the backend now?

        In half-open, a ``True`` consumes one probe slot; the caller
        *must* follow up with :meth:`record_success` or
        :meth:`record_failure` for that submission.
        """
        st = self.state
        if st == CLOSED:
            return True
        if st == HALF_OPEN and self._probes_inflight < self.half_open_probes:
            self._probes_inflight += 1
            return True
        return False

    def record_success(self) -> None:
        """A backend submission produced a validated payload."""
        if self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._transition(CLOSED)
        self._failures = 0

    def record_failure(self, reason: str = "") -> None:
        """A backend submission was quarantined / timed out / died."""
        self._failures += 1
        if self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._open(reason or "half-open probe failed")
        elif self._state == CLOSED \
                and self._failures >= self.failure_threshold:
            self._open(reason or
                       f"{self._failures} consecutive backend failures")

    def snapshot(self) -> dict:
        return {"state": self.state, "failures": self._failures,
                "transitions": self.transitions}

    # ------------------------------------------------------------------
    def _open(self, reason: str) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN, reason=reason)

    def _transition(self, to: str, *, reason: str = "") -> None:
        if to == self._state:
            return
        frm, self._state = self._state, to
        self.transitions += 1
        if to != OPEN:
            self._failures = 0
        if to == HALF_OPEN:
            self._probes_inflight = 0
        metrics.set_gauge("repro.service.breaker_state", _STATE_GAUGE[to])
        metrics.inc("repro.service.breaker", to=to)
        events.emit("breaker", frm=frm, to=to, reason=reason or None)
        level = logging.WARNING if to == OPEN else logging.INFO
        log.log(level, "circuit breaker %s -> %s%s", frm, to,
                f" ({reason})" if reason else "")
