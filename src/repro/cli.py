"""Command-line interface: ``python -m repro <command> ...``.

Exposes the library's main entry points without writing any Python:

    python -m repro select --strategy GcdPad --n 300
    python -m repro simulate --kernel JACOBI --strategy Pad --n 250
    python -m repro table1
    python -m repro table3 [--full] [--checkpoint PATH] [--budget SEC]
    python -m repro figures --kernel REDBLACK [--full] [--checkpoint PATH]
    python -m repro lattice --kernel JACOBI --n 300 [--assoc 1 --assoc 2]
    python -m repro fig22
    python -m repro mgrid [--level 7]
    python -m repro section1
    python -m repro cache info --point-cache DIR
    python -m repro serve --socket /tmp/advisor.sock --point-cache DIR
    python -m repro ask --socket /tmp/advisor.sock --n 300 [--n 400]
    python -m repro fsck PATH [--repair]
    python -m repro bench compare OLD.json NEW.json
    python -m repro bench trend BENCH_DIR [--gate PCT]
    python -m repro obs-report run.jsonl [--metrics metrics.json]
    python -m repro runs list|show|gc --run-dir DIR
    python -m repro watch RUN_DIR [--once]

``--full`` switches to the paper's sweep density (equivalent to setting
``REPRO_FULL=1``). The sweep commands (``table3``, ``figures``) accept
``--checkpoint PATH`` to journal completed points and resume after an
interruption, ``--resume`` to insist the journal already exists,
``--resume-force`` to adopt a journal whose config fingerprint does not
match this run, and ``--budget SECONDS`` to cap each point's exact
simulation (over-budget points degrade to the analytic miss model and
are flagged in the output). ``--parallel N`` fans sweep points out to N
supervised worker processes — a crashed, hung, or over-
``--point-timeout`` worker is SIGKILLed, retried, and finally
quarantined to the analytic model, so the sweep always completes with a
full result set. Usage errors exit with code 2 and a one-line message.

Performance (``simulate``, ``table3``, ``figures``): ``--point-cache
DIR`` keeps a persistent, content-addressed store of simulated points —
repeated runs (and the parallel pool) skip anything any previous run
already finished; ``repro cache info|clear --point-cache DIR`` inspects
or empties it. Journals and store entries are checksummed; ``repro
fsck PATH`` verifies one artifact (a journal file, a store directory,
a ``--run-dir`` ledger or one of its run directories) record by record
and exits nonzero on damage — ``--repair`` quarantines the damaged
records so the artifact is clean again.

Advisor service: ``repro serve`` runs the long-lived tile advisor —
queries are answered from the point store when warm, from a bounded
background exact simulation when it fits the per-query deadline, and
from the paper's analytic model (marked degraded, with a reason)
otherwise; identical in-flight queries coalesce, overload sheds with a
typed retry-after, and a circuit breaker rides out a crashing backend.
``repro ask --socket PATH --n N`` queries it. SIGINT/SIGTERM drain the
server gracefully (exit 0); with ``--run-dir`` the serve session is
ledgered and its ``status.json`` doubles as the live health snapshot
for ``repro watch``. Sweeps carrying a
checkpoint or point cache drain gracefully on SIGINT/SIGTERM: in-flight
points finish and journal, the command exits 130, and re-running
resumes from the journal. ``--chunk-size N`` bounds the addresses materialized per
trace chunk (0 = unbounded; results are bit-for-bit identical either
way). ``--extrapolate`` enables exact steady-state K-plane
extrapolation: untiled points stop simulating once their per-plane
statistics provably repeat (shift-equivalent cache tags) and the rest
is costed in closed form — identical miss counts, flagged per point;
ineligible points fall back to full simulation.

Observability (every command, flags go after the subcommand name):
``--log-json PATH`` records the run's structured event timeline as
JSONL, ``--metrics PATH`` snapshots the metrics registry as JSON,
``--profile`` adds per-phase tracemalloc peaks to span-end events
(requires ``--log-json``), and ``-v``/``-q`` raise/lower stderr log
verbosity. ``repro obs-report`` summarizes the artifacts afterwards.
Tables and figures always go to stdout; diagnostics go to stderr.

Run ledger: ``--run-dir DIR`` records the invocation under
``DIR/<run_id>/`` — a CRC'd manifest (argv, config fingerprint,
outcome, wall time, final metrics digest), the merged event trace
(supervised pool workers trace into per-worker shards that are merged
into one causally-linked timeline), the metrics snapshot, and a live
``status.json`` that ``repro watch`` follows and ``--progress`` echoes
to stderr. ``repro runs list|show|gc --run-dir DIR`` manages the
ledger; ``repro obs-report DIR`` renders any historical run.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

log = logging.getLogger(__name__)


def build_parser() -> argparse.ArgumentParser:
    # Shared observability/verbosity flags, attached to every subcommand
    # (so they may be given after the subcommand name, where users type
    # them).
    logopts = argparse.ArgumentParser(add_help=False)
    logopts.add_argument("-v", "--verbose", action="count", default=0,
                         help="more stderr diagnostics (repeatable)")
    logopts.add_argument("-q", "--quiet", action="count", default=0,
                         help="less stderr diagnostics (repeatable)")
    obsopts = argparse.ArgumentParser(add_help=False, parents=[logopts])
    g = obsopts.add_argument_group("observability")
    g.add_argument("--log-json", metavar="PATH",
                   help="write the run's structured event timeline "
                        "(nested timed spans, retries, checkpoint "
                        "resumes) to PATH as JSONL")
    g.add_argument("--metrics", metavar="PATH",
                   help="write a metrics snapshot (miss classification, "
                        "search effort, throughput) to PATH as JSON; "
                        "also enables the shadow miss classifier")
    g.add_argument("--profile", action="store_true",
                   help="attach per-phase tracemalloc peak memory to "
                        "span-end events (requires --log-json or "
                        "--run-dir)")
    g.add_argument("--run-dir", metavar="DIR",
                   help="record this invocation in a run ledger: "
                        "DIR/<run_id>/ gets a CRC'd manifest (argv, "
                        "outcome, metrics digest), the merged event "
                        "trace, the metrics snapshot, and a live "
                        "status.json; inspect with `repro runs` / "
                        "`repro watch` / `repro obs-report DIR`")
    g.add_argument("--progress", action="store_true",
                   help="print a live progress line (done/total, "
                        "throughput, ETA) to stderr while sweeping")

    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Rivera & Tseng, 'Tiling Optimizations "
                    "for 3D Scientific Computations' (SC'00)")
    sub = p.add_subparsers(dest="command", required=True)

    def add_full(sp):
        sp.add_argument("--full", action="store_true",
                        help="paper-density sweeps (sets REPRO_FULL=1)")

    def add_resilience(sp):
        sp.add_argument("--checkpoint", metavar="PATH",
                        help="journal completed points to PATH (JSONL); "
                             "re-running with the same PATH resumes, "
                             "skipping journaled points")
        sp.add_argument("--resume", action="store_true",
                        help="require that --checkpoint already exists "
                             "(guards against typos silently starting "
                             "a fresh sweep)")
        sp.add_argument("--resume-force", action="store_true",
                        help="adopt a --checkpoint journal even when its "
                             "config fingerprint does not match this run "
                             "(its points are trusted as-is)")
        sp.add_argument("--budget", type=float, metavar="SECONDS",
                        help="per-point wall-clock budget; over-budget "
                             "points degrade to the analytic miss model "
                             "and are marked degraded")
        sp.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="run sweep points in N supervised worker "
                             "processes (default 1 = serial); failing "
                             "points are retried, then quarantined to "
                             "the analytic model")
        sp.add_argument("--point-timeout", type=float, metavar="SECONDS",
                        help="hard per-point wall clock: with --parallel "
                             "the worker is SIGKILLed on expiry; "
                             "serially it acts as a wall budget")

    def add_perf(sp):
        sp.add_argument("--point-cache", metavar="DIR",
                        help="persistent point store: simulated points "
                             "are reused across runs and processes "
                             "(size-bounded, LRU; see "
                             "REPRO_POINT_CACHE_BYTES)")
        sp.add_argument("--chunk-size", type=int, metavar="N",
                        help="addresses per simulated trace chunk "
                             "(bounds memory; 0 = unbounded; default: "
                             "a ~1M-address bound)")
        sp.add_argument("--extrapolate", action="store_true",
                        help="exact steady-state K-plane mode: stop "
                             "simulating a point once its per-plane "
                             "statistics provably repeat and "
                             "extrapolate the rest in closed form "
                             "(identical results, recorded per point; "
                             "points where the check never fires are "
                             "simulated in full; incompatible with "
                             "--metrics' miss classifiers, which then "
                             "win)")
        sp.add_argument("--trace-form", choices=["auto", "runs", "flat"],
                        default="auto",
                        help="trace representation fed to the simulator "
                             "(identical statistics): 'runs' = affine "
                             "(base, stride, count) run compression, "
                             "'flat' = materialized addresses, 'auto' "
                             "(default) = runs wherever the point's "
                             "simulation can consume them")

    sp = sub.add_parser("select", help="run one tile-selection strategy",
                        parents=[obsopts])
    sp.add_argument("--strategy", default="GcdPad")
    sp.add_argument("--n", type=int, required=True,
                    help="array extent (DI = DJ = N)")
    sp.add_argument("--cs", type=int, default=2048,
                    help="cache capacity in elements (default 16K of f64)")
    sp.add_argument("--mi", type=int, default=2)
    sp.add_argument("--mj", type=int, default=2)
    sp.add_argument("--atd", type=int, default=3)

    sp = sub.add_parser("simulate", help="simulate one kernel configuration",
                        parents=[obsopts])
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID"])
    sp.add_argument("--strategy", default="GcdPad")
    sp.add_argument("--n", type=int, required=True)
    add_full(sp)
    add_perf(sp)

    sp = sub.add_parser("table1", help="Table 1: tile enumeration",
                        parents=[obsopts])

    sp = sub.add_parser("table3", help="Table 3: average improvements",
                        parents=[obsopts])
    sp.add_argument("--csv", metavar="PATH",
                    help="also dump all simulated points as CSV")
    sp.add_argument("--n", type=int, action="append", metavar="N",
                    help="problem size(s) to sweep (repeatable); "
                         "default: the standard N grid")
    add_full(sp)
    add_resilience(sp)
    add_perf(sp)

    sp = sub.add_parser("figures", help="Figures 14-19 series for a kernel",
                        parents=[obsopts])
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID"])
    sp.add_argument("--csv", metavar="PATH",
                    help="also dump the series points as CSV")
    sp.add_argument("--n", type=int, action="append", metavar="N",
                    help="problem size(s) to sweep (repeatable); "
                         "default: the standard N grid")
    add_full(sp)
    add_resilience(sp)
    add_perf(sp)

    sp = sub.add_parser("lattice",
                        help="associativity lattice: strategy x assoc x "
                             "line size at one N (when does padding "
                             "stop mattering?)",
                        parents=[obsopts])
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID"])
    sp.add_argument("--n", type=int, default=300,
                    help="problem size (default 300, the conflict-prone "
                         "regime)")
    sp.add_argument("--strategy", action="append", metavar="NAME",
                    help="strategy to include (repeatable; default: "
                         "Orig, GcdPad, Pad)")
    sp.add_argument("--assoc", type=int, action="append", metavar="A",
                    help="associativity to include (repeatable; "
                         "default: 1, 2, 4)")
    sp.add_argument("--line", type=int, action="append", metavar="BYTES",
                    help="L1 line size to include (repeatable; "
                         "default: 32, 64)")
    sp.add_argument("--csv", metavar="PATH",
                    help="also dump every lattice cell as CSV")
    sp.add_argument("--budget", type=float, metavar="SECONDS",
                    help="per-point wall-clock budget; over-budget "
                         "points degrade to the analytic miss model")
    sp.add_argument("--point-timeout", type=float, metavar="SECONDS",
                    help="per-point wall clock, enforced as a budget "
                         "(lattice cells run serially)")
    add_full(sp)
    add_perf(sp)

    sp = sub.add_parser("fig22", help="Figure 22: padding memory overhead",
                        parents=[obsopts])
    add_full(sp)

    sp = sub.add_parser("mgrid", help="Section 4.6: MGRID application study",
                        parents=[obsopts])
    sp.add_argument("--level", type=int, default=7,
                    help="finest grid level (7 -> 130^3 reference class)")

    sp = sub.add_parser("section1", help="Section 1: capacity thresholds",
                        parents=[obsopts])

    sp = sub.add_parser("bench",
                        help="compare bench reports or trend a history "
                             "of them",
                        parents=[logopts])
    sp.add_argument("action", choices=["compare", "trend"],
                    help="compare: per-point speedup of NEW over OLD; "
                         "trend: latest report in a directory vs the "
                         "median of its predecessors")
    sp.add_argument("old", metavar="OLD.json|DIR",
                    help="baseline bench report (compare) or a "
                         "directory of BENCH_*.json reports (trend)")
    sp.add_argument("new", metavar="NEW.json", nargs="?",
                    help="fresh bench report to compare against OLD "
                         "(compare only)")
    sp.add_argument("--force", action="store_true",
                    help="compare even when the reports' config "
                         "fingerprints or trace forms differ "
                         "(different workloads or representations; "
                         "speedups are then not meaningful)")
    sp.add_argument("--gate", type=float, metavar="PCT",
                    help="trend only: exit 1 when any point's latest "
                         "time regresses more than PCT%% against the "
                         "median of prior reports")

    sp = sub.add_parser("cache", help="inspect/empty a --point-cache store",
                        parents=[logopts])
    sp.add_argument("action", choices=["info", "clear"],
                    help="info: entry/byte/config counts; "
                         "clear: remove every cached point")
    sp.add_argument("--point-cache", metavar="DIR", required=True,
                    help="the store directory to operate on")

    sp = sub.add_parser("serve",
                        help="run the tile-advisor service (JSONL over "
                             "a unix socket or stdio)",
                        parents=[obsopts])
    sp.add_argument("--socket", metavar="PATH",
                    help="unix socket to listen on (JSONL protocol; "
                         "query it with `repro ask --socket PATH`)")
    sp.add_argument("--stdio", action="store_true",
                    help="serve one JSONL conversation over "
                         "stdin/stdout instead of a socket")
    sp.add_argument("--deadline", type=float, default=2.0,
                    metavar="SECONDS",
                    help="default per-query answer deadline; a query "
                         "whose exact simulation misses it degrades "
                         "to the analytic model (default 2s)")
    sp.add_argument("--queue-limit", type=int, default=16, metavar="N",
                    help="max distinct cold points in flight; beyond "
                         "this, queries are shed with a typed "
                         "'overloaded' rejection (default 16)")
    sp.add_argument("--sim-workers", type=int, default=2, metavar="N",
                    help="supervised simulation worker processes "
                         "(default 2)")
    sp.add_argument("--point-timeout", type=float, metavar="SECONDS",
                    help="hard per-simulation wall clock; the worker "
                         "is SIGKILLed on expiry and the attempt "
                         "counts as a backend failure")
    sp.add_argument("--budget", type=float, metavar="SECONDS",
                    help="per-point wall-clock budget inside the "
                         "worker; over-budget points degrade to the "
                         "analytic model worker-side")
    add_perf(sp)

    sp = sub.add_parser("ask",
                        help="query a running tile-advisor service",
                        parents=[logopts])
    sp.add_argument("--socket", metavar="PATH", required=True,
                    help="the serve socket to query")
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID", "PSINV"])
    sp.add_argument("--strategy", default="GcdPad")
    sp.add_argument("--n", type=int, action="append", metavar="N",
                    help="problem size(s) to ask about (repeatable; "
                         "one query per size, pipelined on one "
                         "connection)")
    sp.add_argument("--deadline", type=float, metavar="SECONDS",
                    help="per-query deadline to request (server "
                         "default applies when omitted)")
    sp.add_argument("--timeout", type=float, default=30.0,
                    metavar="SECONDS",
                    help="client-side response timeout (default 30s)")
    sp.add_argument("--status", action="store_true",
                    help="also fetch the service health snapshot")
    sp.add_argument("--json", action="store_true",
                    help="print raw JSONL responses instead of "
                         "human-readable lines")

    sp = sub.add_parser("fsck",
                        help="verify/repair a checkpoint journal, "
                             "point store, or run ledger",
                        parents=[logopts])
    sp.add_argument("target", metavar="PATH",
                    help="a checkpoint journal file, a --point-cache "
                         "store directory, a --run-dir ledger, or one "
                         "run directory inside it")
    sp.add_argument("--repair", action="store_true",
                    help="quarantine damaged records (with provenance "
                         "sidecars) and rewrite the artifact from the "
                         "records that verified")
    sp.add_argument("--show-ok", action="store_true",
                    help="list healthy records too, not just problems")

    sp = sub.add_parser("obs-report",
                        help="summarize a --log-json event file or a "
                             "ledgered run",
                        parents=[logopts])
    sp.add_argument("events", metavar="EVENTS_JSONL|RUN_DIR",
                    help="event file written by --log-json, or a "
                         "--run-dir run directory (its events + "
                         "metrics are used)")
    sp.add_argument("--metrics", metavar="PATH",
                    help="metrics snapshot written by --metrics "
                         "(adds miss-classification tables)")
    sp.add_argument("--top", type=int, default=5,
                    help="how many slowest points to list (default 5)")

    sp = sub.add_parser("runs",
                        help="list/show/gc the runs in a --run-dir ledger",
                        parents=[logopts])
    sp.add_argument("action", choices=["list", "show", "gc"],
                    help="list: one row per run; show: one run's "
                         "manifest; gc: drop the oldest runs")
    sp.add_argument("run", nargs="?", metavar="RUN_ID",
                    help="run id (or run directory) for `show`; "
                         "default: the latest run")
    sp.add_argument("--run-dir", metavar="DIR", required=True,
                    help="the run ledger directory")
    sp.add_argument("--keep", type=int, default=20, metavar="N",
                    help="gc: how many newest runs to keep (default 20)")

    sp = sub.add_parser("watch",
                        help="follow a run's live status until it ends",
                        parents=[logopts])
    sp.add_argument("run", metavar="RUN_DIR",
                    help="a run directory (or a ledger directory: its "
                         "latest run)")
    sp.add_argument("--interval", type=float, default=1.0,
                    metavar="SECONDS",
                    help="poll interval (default 1s)")
    sp.add_argument("--once", action="store_true",
                    help="print the current status once and exit")
    sp.add_argument("--timeout", type=float, metavar="SECONDS",
                    help="give up (exit 1) if the run has not ended "
                         "after SECONDS")
    return p


def _apply_full(args) -> None:
    if getattr(args, "full", False):
        os.environ["REPRO_FULL"] = "1"


def _validate(args) -> None:
    """Reject bad inputs with one-line errors before any work starts.

    Raises :class:`~repro.errors.ReproError`; :func:`main` converts
    that into a one-line stderr message and exit code 2 (argparse's own
    convention for usage errors) instead of a traceback.
    """
    from repro.errors import ConfigurationError, ExperimentError

    n = getattr(args, "n", None)
    if n is not None:
        sizes = n if isinstance(n, list) else [n]
        for size in sizes:
            if size <= 0:
                raise ConfigurationError(
                    f"--n must be positive, got {size}")
    if getattr(args, "profile", False) \
            and not getattr(args, "log_json", None) \
            and not getattr(args, "run_dir", None):
        raise ConfigurationError(
            "--profile records memory peaks on span-end events; "
            "it requires --log-json PATH or --run-dir DIR")
    if args.command == "obs-report" and args.top <= 0:
        raise ConfigurationError(f"--top must be positive, got {args.top}")
    if args.command == "mgrid" and not 2 <= args.level <= 10:
        raise ConfigurationError(
            f"--level must be in 2..10 (grid 5^3 .. 1025^3), "
            f"got {args.level}")
    if args.command in ("select", "simulate"):
        from repro.core.selector import STRATEGIES

        if args.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {args.strategy!r}; "
                f"valid: {', '.join(sorted(STRATEGIES))}")
    if args.command == "lattice":
        from repro.core.selector import STRATEGIES

        for strat in args.strategy or []:
            if strat not in STRATEGIES:
                raise ConfigurationError(
                    f"unknown strategy {strat!r}; "
                    f"valid: {', '.join(sorted(STRATEGIES))}")
        for a in args.assoc or []:
            if a < 1:
                raise ConfigurationError(f"--assoc must be >= 1, got {a}")
        for line in args.line or []:
            if line < 8 or line & (line - 1):
                raise ConfigurationError(
                    f"--line must be a power of two >= 8 bytes, got {line}")
    if getattr(args, "resume", False):
        if not getattr(args, "checkpoint", None):
            raise ExperimentError("--resume requires --checkpoint PATH")
        import pathlib

        if not pathlib.Path(args.checkpoint).exists():
            raise ExperimentError(
                f"--resume: checkpoint {args.checkpoint} does not exist; "
                f"drop --resume to start a fresh journaled sweep")
    if getattr(args, "resume_force", False) and not getattr(
            args, "checkpoint", None):
        raise ExperimentError("--resume-force requires --checkpoint PATH")
    if getattr(args, "budget", None) is not None and args.budget <= 0:
        raise ConfigurationError(
            f"--budget must be positive seconds, got {args.budget}")
    if getattr(args, "parallel", 1) < 1:
        raise ConfigurationError(
            f"--parallel must be >= 1, got {args.parallel}")
    if getattr(args, "point_timeout", None) is not None \
            and args.point_timeout <= 0:
        raise ConfigurationError(
            f"--point-timeout must be positive seconds, "
            f"got {args.point_timeout}")
    if getattr(args, "chunk_size", None) is not None and args.chunk_size < 0:
        raise ConfigurationError(
            f"--chunk-size must be >= 0 (0 = unbounded), "
            f"got {args.chunk_size}")
    if (getattr(args, "trace_form", "auto") == "runs"
            and getattr(args, "extrapolate", False)):
        raise ConfigurationError(
            "--extrapolate replays flat per-plane chunks; "
            "--trace-form runs cannot be forced with it "
            "(use auto or flat)")
    if args.command == "bench":
        if args.action == "compare" and not args.new:
            raise ConfigurationError(
                "bench compare needs two reports: OLD.json NEW.json")
        if args.action == "trend" and args.new:
            raise ConfigurationError(
                "bench trend takes one directory of BENCH_*.json reports")
        if args.gate is not None:
            if args.action != "trend":
                raise ConfigurationError("--gate applies to bench trend only")
            if args.gate <= 0:
                raise ConfigurationError(
                    f"--gate must be a positive percentage, got {args.gate}")
    if args.command == "serve":
        if bool(args.socket) == bool(args.stdio):
            raise ConfigurationError(
                "serve needs exactly one transport: --socket PATH "
                "or --stdio")
        if args.deadline <= 0:
            raise ConfigurationError(
                f"--deadline must be positive seconds, "
                f"got {args.deadline}")
        if args.queue_limit < 1:
            raise ConfigurationError(
                f"--queue-limit must be >= 1, got {args.queue_limit}")
        if args.sim_workers < 1:
            raise ConfigurationError(
                f"--sim-workers must be >= 1, got {args.sim_workers}")
    if args.command == "ask":
        if not args.n and not args.status:
            raise ConfigurationError(
                "ask needs at least one --n N query (or --status)")
        if args.deadline is not None and args.deadline <= 0:
            raise ConfigurationError(
                f"--deadline must be positive seconds, "
                f"got {args.deadline}")
        if args.timeout <= 0:
            raise ConfigurationError(
                f"--timeout must be positive seconds, got {args.timeout}")
        from repro.core.selector import STRATEGIES

        if args.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {args.strategy!r}; "
                f"valid: {', '.join(sorted(STRATEGIES))}")
    if args.command == "runs":
        if args.keep < 0:
            raise ConfigurationError(
                f"--keep must be >= 0, got {args.keep}")
    if args.command == "watch":
        if args.interval <= 0:
            raise ConfigurationError(
                f"--interval must be positive, got {args.interval}")
        if args.timeout is not None and args.timeout <= 0:
            raise ConfigurationError(
                f"--timeout must be positive, got {args.timeout}")


def _sweep_options(args):
    """The SweepOptions for table3()/figure_series() from CLI flags."""
    from repro.experiments.options import SweepOptions

    budget = None
    if getattr(args, "budget", None):
        from repro.resilience import PointBudget

        budget = PointBudget(wall_seconds=args.budget)
    return SweepOptions(
        checkpoint=getattr(args, "checkpoint", None) or None,
        budget=budget,
        parallel=getattr(args, "parallel", 1),
        point_timeout=getattr(args, "point_timeout", None),
        resume_force=getattr(args, "resume_force", False),
        point_cache=getattr(args, "point_cache", None) or None,
        chunk_size=getattr(args, "chunk_size", None),
        extrapolate=getattr(args, "extrapolate", False),
        trace_form=getattr(args, "trace_form", "auto"))


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # Unix way (also silence the interpreter-shutdown flush).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except Exception as exc:
        from repro.errors import ReproError, SweepInterrupted

        if isinstance(exc, SweepInterrupted):
            # Graceful drain: everything finished is journaled, the
            # sweep is resumable; 130 is the conventional
            # died-on-SIGINT code schedulers and shells expect.
            print(f"repro: interrupted: {exc}", file=sys.stderr)
            return 130
        if not isinstance(exc, ReproError):
            raise
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _run(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_full(args)
    _validate(args)

    if args.command == "obs-report":
        from repro.obs import setup_cli_logging
        from repro.obs.report import obs_report

        setup_cli_logging(args.verbose, args.quiet)
        print(obs_report(args.events, args.metrics, top=args.top))
        return 0

    if args.command == "runs":
        from repro.obs import setup_cli_logging

        setup_cli_logging(args.verbose, args.quiet)
        return _runs(args)

    if args.command == "watch":
        from repro.obs import setup_cli_logging
        from repro.obs.ledger import resolve_run
        from repro.obs.status import watch

        setup_cli_logging(args.verbose, args.quiet)
        return watch(resolve_run(args.run), interval=args.interval,
                     once=args.once, timeout=args.timeout)

    if args.command == "ask":
        from repro.obs import setup_cli_logging

        setup_cli_logging(args.verbose, args.quiet)
        return _ask(args)

    from repro import obs

    full_argv = list(argv if argv is not None else sys.argv[1:])
    cmd = " ".join(full_argv)
    with obs.session(log_json=getattr(args, "log_json", None),
                     metrics_path=getattr(args, "metrics", None),
                     profile=getattr(args, "profile", False),
                     verbose=getattr(args, "verbose", 0),
                     quiet=getattr(args, "quiet", 0),
                     command=cmd or args.command,
                     run_dir=getattr(args, "run_dir", None),
                     argv=full_argv,
                     progress=getattr(args, "progress", False)) as ses:
        for name in ("checkpoint", "point_cache", "csv"):
            value = getattr(args, name, None)
            if value:
                ses.artifacts[name] = str(value)
        return _dispatch(args)


def _ask(args) -> int:
    """``repro ask``: query a running advisor over its unix socket.

    Exit 0 when every query got an ok answer (any provenance tier —
    a degraded analytic answer is still an answer), 1 when any query
    came back as a typed error (e.g. ``overloaded``); connection
    failures raise :class:`~repro.errors.ServiceError` (exit 2).
    """
    import json as _json

    from repro.service import client as svc_client
    from repro.service.api import AdvisorQuery

    payloads = []
    for i, n in enumerate(args.n or []):
        q = AdvisorQuery(kernel=args.kernel, n=n, strategy=args.strategy,
                         deadline_s=args.deadline, qid=i)
        payloads.append(q.to_payload())
    if args.status:
        payloads.append({"v": 1, "op": "status", "id": "status"})
    responses = svc_client.request(args.socket, payloads,
                                   timeout=args.timeout)
    failed = 0
    for resp in responses:
        if args.json:
            print(_json.dumps(resp, sort_keys=True))
        else:
            print(svc_client.format_response(resp))
        if not resp.get("ok"):
            failed += 1
    return 1 if failed else 0


def _runs(args) -> int:
    """``repro runs list|show|gc`` against one ledger directory."""
    from repro.obs import ledger

    if args.action == "list":
        print(ledger.format_runs(ledger.list_runs(args.run_dir)))
        return 0
    if args.action == "show":
        run = ledger.resolve_run(args.run or args.run_dir,
                                 ledger_dir=args.run_dir)
        manifest = ledger.read_manifest(run)
        print(ledger.format_manifest(manifest))
        return 1 if manifest.get("integrity") else 0
    removed = ledger.gc_runs(args.run_dir, keep=args.keep)
    print(f"removed {len(removed)} run(s), kept the newest {args.keep}")
    for run_id in removed:
        log.info("gc: removed run %s", run_id)
    return 0


def _dispatch(args) -> int:
    # Imports happen after REPRO_FULL is set so configs pick it up.
    if args.command == "select":
        from repro.core.selector import select

        r = select(args.strategy, args.cs, args.n, args.n,
                   mi=args.mi, mj=args.mj, atd=args.atd)
        tile = f"{r.tile.ti} x {r.tile.tj}" if r.tile else "(untiled)"
        print(f"strategy : {r.strategy}")
        print(f"tile     : {tile}")
        print(f"dims     : {r.di_p} x {r.dj_p} "
              f"(pad {r.di_p - args.n}, {r.dj_p - args.n})")
        if r.tile:
            print(f"cost     : {r.cost:.4f}")

    elif args.command == "simulate":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.options import PointPolicy
        from repro.experiments.runner import open_store, run_point

        policy = None
        if (args.point_cache or args.chunk_size is not None
                or args.extrapolate or args.trace_form != "auto"):
            policy = PointPolicy(store=open_store(args.point_cache or None),
                                 chunk_size=args.chunk_size,
                                 extrapolate=args.extrapolate,
                                 trace_form=args.trace_form)
        p = run_point(args.kernel, args.strategy, args.n, ExperimentConfig(),
                      policy=policy)
        marker = " [extrapolated]" if p.extrapolated else ""
        print(f"{args.kernel} / {args.strategy} at N={args.n} "
              f"(NK={p.nk}):{marker}")
        print(f"  tile        : {p.tile or '(untiled)'}  "
              f"dims {p.di_p} x {p.dj_p}")
        print(f"  L1 miss rate: {p.l1_rate:.2f}%")
        print(f"  L2 miss rate: {p.l2_rate:.2f}%")
        print(f"  modeled perf: {p.mflops:.1f} MFlops")

    elif args.command == "table1":
        from repro.experiments.table1 import format_table1, table1

        print(format_table1(table1()))

    elif args.command == "table3":
        from repro.experiments.table3 import format_table3, table3

        res = table3(sizes=args.n, options=_sweep_options(args))
        print(format_table3(res))
        if args.csv:
            from repro.experiments.export import write_points_csv

            pts = [p for k in res.points.values()
                   for series in k.values() for p in series]
            path = write_points_csv(pts, args.csv)
            log.info("wrote %d points to %s", len(pts), path)

    elif args.command == "figures":
        from repro.experiments.figures import figure_series, format_figure

        data = figure_series(args.kernel, sizes=args.n,
                             options=_sweep_options(args))
        print(format_figure(data, "l1_rate", "L1 miss rate (%)"))
        print()
        print(format_figure(data, "mflops", "MFlops"))
        if args.csv:
            from repro.experiments.export import write_points_csv

            pts = [p for series in data.points.values() for p in series]
            path = write_points_csv(pts, args.csv)
            log.info("wrote %d points to %s", len(pts), path)

    elif args.command == "lattice":
        from repro.experiments.lattice import (
            DEFAULT_ASSOCS,
            DEFAULT_LINES,
            DEFAULT_STRATEGIES,
            format_lattice,
            run_lattice,
            write_lattice_csv,
        )

        data = run_lattice(
            args.kernel, args.n,
            strategies=tuple(args.strategy or DEFAULT_STRATEGIES),
            assocs=tuple(args.assoc or DEFAULT_ASSOCS),
            line_sizes=tuple(args.line or DEFAULT_LINES),
            options=_sweep_options(args))
        print(format_lattice(data, "l1_rate", "L1 miss rate (%)"))
        print()
        print(format_lattice(data, "mflops", "MFlops", gap=False))
        if args.csv:
            path = write_lattice_csv(data, args.csv)
            log.info("wrote %d lattice cells to %s", len(data.cells), path)

    elif args.command == "fig22":
        from repro.experiments.fig22 import fig22, format_fig22

        print(format_fig22(fig22()))

    elif args.command == "mgrid":
        from repro.experiments.mgrid_app import format_mgrid_app, mgrid_app

        print(format_mgrid_app(mgrid_app(finest_level=args.level)))

    elif args.command == "bench":
        from repro.errors import ExperimentError
        from repro.perf.bench import (
            bench_trend,
            compare_benchmarks,
            format_compare,
            format_trend,
            read_bench,
            read_bench_dir,
        )

        if args.action == "trend":
            trend = bench_trend(read_bench_dir(args.old))
            if not trend["trace_form_stable"] and not args.force:
                raise ExperimentError(
                    f"trace forms drift across the history "
                    f"({', '.join(trend['trace_forms'])}): deltas would "
                    f"mix the representation change with real "
                    f"regressions; pass --force to trend anyway")
            print(format_trend(trend, gate=args.gate))
            if args.gate is not None and any(
                    row["regressed_pct"] is not None
                    and row["regressed_pct"] > args.gate
                    for row in trend["points"]):
                return 1
            return 0
        cmp = compare_benchmarks(read_bench(args.old), read_bench(args.new))
        if not cmp["fingerprint_match"] and not args.force:
            raise ExperimentError(
                f"config fingerprints differ ({cmp['old_fingerprint']} vs "
                f"{cmp['new_fingerprint']}): the reports benched "
                f"different workloads; pass --force to compare anyway")
        if not cmp["trace_form_match"] and not args.force:
            raise ExperimentError(
                f"trace forms differ ({cmp['old_trace_form']} vs "
                f"{cmp['new_trace_form']}): the reports timed different "
                f"trace representations, so speedups conflate the form "
                f"change with real regressions; pass --force to compare "
                f"anyway")
        print(format_compare(cmp))

    elif args.command == "serve":
        from repro.experiments.runner import open_store
        from repro.obs import context as obs_context
        from repro.obs.status import StatusPublisher
        from repro.service.server import serve

        budget = None
        if args.budget:
            from repro.resilience import PointBudget

            budget = PointBudget(wall_seconds=args.budget)
        status = StatusPublisher.for_run(obs_context.current())
        return serve(socket_path=args.socket or None, stdio=args.stdio,
                     store=open_store(args.point_cache or None),
                     deadline_s=args.deadline,
                     queue_limit=args.queue_limit,
                     workers=args.sim_workers,
                     point_timeout=args.point_timeout, budget=budget,
                     chunk_size=args.chunk_size,
                     extrapolate=args.extrapolate, status=status)

    elif args.command == "fsck":
        from repro.resilience.fsck import fsck_path

        report = fsck_path(args.target, repair=args.repair)
        print(report.render(verbose=args.show_ok))
        return 0 if report.ok else 1

    elif args.command == "cache":
        from repro.experiments.runner import cache_info, clear_cache

        if args.action == "info":
            print(cache_info(args.point_cache).store.summary())
        else:
            removed = clear_cache(args.point_cache)
            print(f"removed {removed} cached point(s) from "
                  f"{args.point_cache}")

    elif args.command == "section1":
        from repro.experiments.section1 import (
            section1_thresholds,
            verify_boundary_2d,
            verify_boundary_3d,
        )

        th = section1_thresholds()
        print("Analytic thresholds (Section 1):")
        print(f"  2D Jacobi, 16K L1: reuse preserved to N = {th.max_2d_l1}")
        print(f"  3D Jacobi, 16K L1: reuse preserved to N = {th.max_3d_l1}")
        print(f"  3D Jacobi,  2M L2: reuse preserved to N = {th.max_3d_l2}")
        print("Simulated trailing-reference hit rates:")
        for label, rates in (("2D", verify_boundary_2d()),
                             ("3D", verify_boundary_3d())):
            row = "  ".join(f"N={n}: {r:.2f}" for n, r in sorted(rates.items()))
            print(f"  {label}: {row}")

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
