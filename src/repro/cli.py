"""Command-line interface: ``python -m repro <command> ...``.

Exposes the library's main entry points without writing any Python:

    python -m repro select --strategy GcdPad --n 300
    python -m repro simulate --kernel JACOBI --strategy Pad --n 250
    python -m repro table1
    python -m repro table3 [--full] [--checkpoint PATH] [--budget SEC]
    python -m repro figures --kernel REDBLACK [--full] [--checkpoint PATH]
    python -m repro fig22
    python -m repro mgrid [--level 7]
    python -m repro section1

``--full`` switches to the paper's sweep density (equivalent to setting
``REPRO_FULL=1``). The sweep commands (``table3``, ``figures``) accept
``--checkpoint PATH`` to journal completed points and resume after an
interruption, ``--resume`` to insist the journal already exists, and
``--budget SECONDS`` to cap each point's exact simulation (over-budget
points degrade to the analytic miss model and are flagged in the
output). Usage errors exit with code 2 and a one-line message.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Rivera & Tseng, 'Tiling Optimizations "
                    "for 3D Scientific Computations' (SC'00)")
    sub = p.add_subparsers(dest="command", required=True)

    def add_full(sp):
        sp.add_argument("--full", action="store_true",
                        help="paper-density sweeps (sets REPRO_FULL=1)")

    def add_resilience(sp):
        sp.add_argument("--checkpoint", metavar="PATH",
                        help="journal completed points to PATH (JSONL); "
                             "re-running with the same PATH resumes, "
                             "skipping journaled points")
        sp.add_argument("--resume", action="store_true",
                        help="require that --checkpoint already exists "
                             "(guards against typos silently starting "
                             "a fresh sweep)")
        sp.add_argument("--budget", type=float, metavar="SECONDS",
                        help="per-point wall-clock budget; over-budget "
                             "points degrade to the analytic miss model "
                             "and are marked degraded")

    sp = sub.add_parser("select", help="run one tile-selection strategy")
    sp.add_argument("--strategy", default="GcdPad")
    sp.add_argument("--n", type=int, required=True,
                    help="array extent (DI = DJ = N)")
    sp.add_argument("--cs", type=int, default=2048,
                    help="cache capacity in elements (default 16K of f64)")
    sp.add_argument("--mi", type=int, default=2)
    sp.add_argument("--mj", type=int, default=2)
    sp.add_argument("--atd", type=int, default=3)

    sp = sub.add_parser("simulate", help="simulate one kernel configuration")
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID"])
    sp.add_argument("--strategy", default="GcdPad")
    sp.add_argument("--n", type=int, required=True)
    add_full(sp)

    sp = sub.add_parser("table1", help="Table 1: tile enumeration")

    sp = sub.add_parser("table3", help="Table 3: average improvements")
    sp.add_argument("--csv", metavar="PATH",
                    help="also dump all simulated points as CSV")
    add_full(sp)
    add_resilience(sp)

    sp = sub.add_parser("figures", help="Figures 14-19 series for a kernel")
    sp.add_argument("--kernel", default="JACOBI",
                    choices=["JACOBI", "REDBLACK", "RESID"])
    sp.add_argument("--csv", metavar="PATH",
                    help="also dump the series points as CSV")
    add_full(sp)
    add_resilience(sp)

    sp = sub.add_parser("fig22", help="Figure 22: padding memory overhead")
    add_full(sp)

    sp = sub.add_parser("mgrid", help="Section 4.6: MGRID application study")
    sp.add_argument("--level", type=int, default=7,
                    help="finest grid level (7 -> 130^3 reference class)")

    sp = sub.add_parser("section1", help="Section 1: capacity thresholds")
    return p


def _apply_full(args) -> None:
    if getattr(args, "full", False):
        os.environ["REPRO_FULL"] = "1"


def _validate(args) -> None:
    """Reject bad inputs with one-line errors before any work starts.

    Raises :class:`~repro.errors.ReproError`; :func:`main` converts
    that into a one-line stderr message and exit code 2 (argparse's own
    convention for usage errors) instead of a traceback.
    """
    from repro.errors import ConfigurationError, ExperimentError

    if getattr(args, "n", None) is not None and args.n <= 0:
        raise ConfigurationError(f"--n must be positive, got {args.n}")
    if args.command == "mgrid" and not 2 <= args.level <= 10:
        raise ConfigurationError(
            f"--level must be in 2..10 (grid 5^3 .. 1025^3), "
            f"got {args.level}")
    if args.command in ("select", "simulate"):
        from repro.core.selector import STRATEGIES

        if args.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {args.strategy!r}; "
                f"valid: {', '.join(sorted(STRATEGIES))}")
    if getattr(args, "resume", False):
        if not getattr(args, "checkpoint", None):
            raise ExperimentError("--resume requires --checkpoint PATH")
        import pathlib

        if not pathlib.Path(args.checkpoint).exists():
            raise ExperimentError(
                f"--resume: checkpoint {args.checkpoint} does not exist; "
                f"drop --resume to start a fresh journaled sweep")
    if getattr(args, "budget", None) is not None and args.budget <= 0:
        raise ConfigurationError(
            f"--budget must be positive seconds, got {args.budget}")


def _resilience_kwargs(args) -> dict:
    """checkpoint/budget keywords for table3()/figure_series()."""
    kwargs: dict = {}
    if getattr(args, "checkpoint", None):
        kwargs["checkpoint"] = args.checkpoint
    if getattr(args, "budget", None):
        from repro.resilience import PointBudget

        kwargs["budget"] = PointBudget(wall_seconds=args.budget)
    return kwargs


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, the
        # Unix way (also silence the interpreter-shutdown flush).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except Exception as exc:
        from repro.errors import ReproError

        if not isinstance(exc, ReproError):
            raise
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _run(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_full(args)
    _validate(args)

    # Imports happen after REPRO_FULL is set so configs pick it up.
    if args.command == "select":
        from repro.core.selector import select

        r = select(args.strategy, args.cs, args.n, args.n,
                   mi=args.mi, mj=args.mj, atd=args.atd)
        tile = f"{r.tile.ti} x {r.tile.tj}" if r.tile else "(untiled)"
        print(f"strategy : {r.strategy}")
        print(f"tile     : {tile}")
        print(f"dims     : {r.di_p} x {r.dj_p} "
              f"(pad {r.di_p - args.n}, {r.dj_p - args.n})")
        if r.tile:
            print(f"cost     : {r.cost:.4f}")

    elif args.command == "simulate":
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_point

        p = run_point(args.kernel, args.strategy, args.n, ExperimentConfig())
        print(f"{args.kernel} / {args.strategy} at N={args.n} "
              f"(NK={p.nk}):")
        print(f"  tile        : {p.tile or '(untiled)'}  "
              f"dims {p.di_p} x {p.dj_p}")
        print(f"  L1 miss rate: {p.l1_rate:.2f}%")
        print(f"  L2 miss rate: {p.l2_rate:.2f}%")
        print(f"  modeled perf: {p.mflops:.1f} MFlops")

    elif args.command == "table1":
        from repro.experiments.table1 import format_table1, table1

        print(format_table1(table1()))

    elif args.command == "table3":
        from repro.experiments.table3 import format_table3, table3

        res = table3(**_resilience_kwargs(args))
        print(format_table3(res))
        if args.csv:
            from repro.experiments.export import write_points_csv

            pts = [p for k in res.points.values()
                   for series in k.values() for p in series]
            path = write_points_csv(pts, args.csv)
            print(f"\nwrote {len(pts)} points to {path}")

    elif args.command == "figures":
        from repro.experiments.figures import figure_series, format_figure

        data = figure_series(args.kernel, **_resilience_kwargs(args))
        print(format_figure(data, "l1_rate", "L1 miss rate (%)"))
        print()
        print(format_figure(data, "mflops", "MFlops"))
        if args.csv:
            from repro.experiments.export import write_points_csv

            pts = [p for series in data.points.values() for p in series]
            path = write_points_csv(pts, args.csv)
            print(f"\nwrote {len(pts)} points to {path}")

    elif args.command == "fig22":
        from repro.experiments.fig22 import fig22, format_fig22

        print(format_fig22(fig22()))

    elif args.command == "mgrid":
        from repro.experiments.mgrid_app import format_mgrid_app, mgrid_app

        print(format_mgrid_app(mgrid_app(finest_level=args.level)))

    elif args.command == "section1":
        from repro.experiments.section1 import (
            section1_thresholds,
            verify_boundary_2d,
            verify_boundary_3d,
        )

        th = section1_thresholds()
        print("Analytic thresholds (Section 1):")
        print(f"  2D Jacobi, 16K L1: reuse preserved to N = {th.max_2d_l1}")
        print(f"  3D Jacobi, 16K L1: reuse preserved to N = {th.max_3d_l1}")
        print(f"  3D Jacobi,  2M L2: reuse preserved to N = {th.max_3d_l2}")
        print("Simulated trailing-reference hit rates:")
        for label, rates in (("2D", verify_boundary_2d()),
                             ("3D", verify_boundary_3d())):
            row = "  ".join(f"N={n}: {r:.2f}" for n, r in sorted(rates.items()))
            print(f"  {label}: {row}")

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
