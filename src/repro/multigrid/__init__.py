"""MGRID-style multigrid solver (the paper's Section 4.6 application).

A full V-cycle solver built from the NAS-MG operators in
:mod:`repro.kernels.mg_ops`: 27-point residual, approximate-inverse
smoothing, full-weighting restriction, trilinear prolongation. The
solver can execute the finest grid's RESID in the paper's tiled block
order (numerically identical), and it records per-level operator work
so the application-speedup experiment can model total execution time.
"""

from repro.multigrid.hierarchy import GridHierarchy
from repro.multigrid.solver import MGSolver, SolveReport, OpCounts

__all__ = ["GridHierarchy", "MGSolver", "SolveReport", "OpCounts"]
