"""Grid hierarchies: the succession of sizes a multigrid solver sweeps.

The paper stresses that this succession — "grids are usually chosen to
be powers of two" — is what defeats time-skewing transformations and
what makes cheap, size-parametric tile selection (Euc3D) valuable: tile
sizes must be recomputed per level when array extents are runtime
values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["GridHierarchy"]


@dataclass(frozen=True)
class GridHierarchy:
    """Sizes ``2^l + 1`` for ``l`` in ``coarsest..finest`` (inclusive)."""

    finest_level: int
    coarsest_level: int = 2

    def __post_init__(self) -> None:
        if self.coarsest_level < 1:
            raise ConfigurationError("coarsest level must be >= 1")
        if self.finest_level < self.coarsest_level:
            raise ConfigurationError(
                f"finest level {self.finest_level} below coarsest "
                f"{self.coarsest_level}")

    @property
    def levels(self) -> list[int]:
        """Levels coarsest-first."""
        return list(range(self.coarsest_level, self.finest_level + 1))

    def size(self, level: int) -> int:
        """Points per dimension at a level."""
        if not (self.coarsest_level <= level <= self.finest_level):
            raise ConfigurationError(f"level {level} outside hierarchy")
        return (1 << level) + 1

    @property
    def sizes(self) -> list[int]:
        return [self.size(l) for l in self.levels]

    @property
    def finest_size(self) -> int:
        return self.size(self.finest_level)

    def points(self, level: int) -> int:
        n = self.size(level)
        return n ** 3

    def work_share(self, level: int) -> float:
        """Fraction of total grid points living at a level.

        The finest grid dominates (~87.5% of points in 3D), which is why
        the paper tiles only the largest grid's RESID and still sees an
        application-level win.
        """
        total = sum(self.points(l) for l in self.levels)
        return self.points(level) / total
