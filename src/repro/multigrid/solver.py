"""The multigrid V-cycle solver (NAS-MG ``mg3P`` structure).

One iteration is:

1. ``r = v - A u`` on the finest grid (RESID — the paper's kernel);
2. restrict the residual down the hierarchy (``rprj3`` chain);
3. solve coarsest: ``z = 0; psinv(r, z)``;
4. walk back up: prolong the correction (``interp``), recompute the
   level residual (RESID), smooth (``psinv``);
5. at the finest: apply the correction, recompute ``r``, smooth.

The finest-grid RESID runs in tiled block order when ``resid_tile`` is
set — identical numerics, the paper's optimized schedule. Every operator
invocation is tallied per level in :class:`OpCounts` so the Section 4.6
experiment can attribute modeled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.kernels.mg_ops import (
    NAS_A,
    NAS_C,
    interp,
    psinv_op,
    resid_op,
    rprj3,
)
from repro.multigrid.hierarchy import GridHierarchy

__all__ = ["MGSolver", "SolveReport", "OpCounts"]


@dataclass
class OpCounts:
    """Operator invocations per level: {level: {op: count}}."""

    counts: dict[int, dict[str, int]] = field(default_factory=dict)

    def tally(self, level: int, op: str) -> None:
        self.counts.setdefault(level, {})[op] = \
            self.counts.get(level, {}).get(op, 0) + 1

    def total(self, op: str) -> int:
        return sum(d.get(op, 0) for d in self.counts.values())


@dataclass
class SolveReport:
    """Result of :meth:`MGSolver.solve`."""

    residual_norms: list[float]
    iterations: int
    ops: OpCounts

    @property
    def final_norm(self) -> float:
        return self.residual_norms[-1]

    @property
    def reduction_per_iter(self) -> float:
        """Geometric-mean residual reduction factor per iteration."""
        first, last = self.residual_norms[0], self.residual_norms[-1]
        if first == 0 or self.iterations == 0:
            return 0.0
        return (last / first) ** (1.0 / self.iterations)


class MGSolver:
    """V-cycle solver for ``A u = v`` with the NAS-MG 27-point operator."""

    def __init__(self, hierarchy: GridHierarchy,
                 a: tuple[float, float, float, float] = NAS_A,
                 c: tuple[float, float, float, float] = NAS_C,
                 resid_tile: tuple[int, int] | None = None):
        self.h = hierarchy
        self.a = a
        self.c = c
        self.resid_tile = resid_tile
        self.ops = OpCounts()

    # ------------------------------------------------------------------
    def _resid(self, level: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        self.ops.tally(level, "resid")
        tile = self.resid_tile if level == self.h.finest_level else None
        return resid_op(u, v, self.a, tile=tile)

    def _psinv(self, level: int, r: np.ndarray, u: np.ndarray) -> None:
        self.ops.tally(level, "psinv")
        psinv_op(r, u, self.c)

    def _rprj3(self, level: int, fine: np.ndarray) -> np.ndarray:
        self.ops.tally(level, "rprj3")
        return rprj3(fine)

    def _interp(self, level: int, coarse: np.ndarray) -> np.ndarray:
        self.ops.tally(level, "interp")
        return interp(coarse)

    # ------------------------------------------------------------------
    def vcycle(self, u: np.ndarray, r: np.ndarray) -> np.ndarray:
        """One mg3P cycle: returns the correction for the finest grid.

        ``r`` is the finest-grid residual; ``u`` is only used for shape
        validation.
        """
        lv = self.h.levels  # coarsest-first
        if r.shape[0] != self.h.finest_size:
            raise ConfigurationError(
                f"residual size {r.shape[0]} != finest {self.h.finest_size}")

        # Restrict residuals down: rs[level] for every level.
        rs: dict[int, np.ndarray] = {lv[-1]: r}
        for level in reversed(lv[1:]):
            rs[level - 1] = self._rprj3(level, rs[level])

        # Coarsest solve: one smoothing application on a zero guess.
        z = np.zeros_like(rs[lv[0]])
        self._psinv(lv[0], rs[lv[0]], z)

        # Walk up, refining the correction.
        for level in lv[1:]:
            z = self._interp(level - 1, z)
            rl = self._resid(level, z, rs[level])
            self._psinv(level, rl, z)
        return z

    # ------------------------------------------------------------------
    def solve(self, v: np.ndarray, iterations: int = 4,
              u0: np.ndarray | None = None,
              target: float | None = None) -> tuple[np.ndarray, SolveReport]:
        """Run V-cycles; returns (solution, report).

        With ``target`` set, raises :class:`ConvergenceError` if the
        final residual norm exceeds it.
        """
        n = self.h.finest_size
        if v.shape != (n, n, n):
            raise ConfigurationError(
                f"rhs shape {v.shape} != {(n, n, n)}")
        u = np.zeros_like(v) if u0 is None else u0.copy()

        fin = self.h.finest_level
        r = self._resid(fin, u, v)
        norms = [float(np.sqrt(np.mean(r * r)))]
        for _ in range(iterations):
            u += self.vcycle(u, r)
            r = self._resid(fin, u, v)
            norms.append(float(np.sqrt(np.mean(r * r))))

        report = SolveReport(residual_norms=norms, iterations=iterations,
                             ops=self.ops)
        if target is not None and report.final_norm > target:
            raise ConvergenceError(
                f"residual {report.final_norm:.3e} above target {target:.3e}")
        return u, report
