"""Common cache-simulation interfaces and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["CacheStats", "CacheLevel"]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Local miss rate: misses over accesses *to this level*."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.misses += other.misses

    def copy(self) -> "CacheStats":
        return CacheStats(self.accesses, self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CacheStats(accesses={self.accesses}, misses={self.misses}, "
                f"miss_rate={self.miss_rate:.4f})")


@runtime_checkable
class CacheLevel(Protocol):
    """Protocol implemented by all cache simulators.

    A level consumes chunks of byte addresses in program order and
    reports, per access, whether it missed. State persists across chunks
    so traces may be streamed without materializing them whole.
    """

    stats: CacheStats

    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Simulate accesses; return a boolean miss mask (program order)."""
        ...

    def reset(self) -> None:
        """Empty the cache and zero the statistics.

        ``reset`` is a *full* reset — statistics included. Simulators
        also offer ``invalidate()`` (contents dropped, statistics
        kept); use :meth:`repro.cache.hierarchy.CacheHierarchy.invalidate`
        when a level sits inside a hierarchy so the hierarchy's totals
        stay consistent.
        """
        ...
