"""Vectorized 2-way set-associative LRU simulation.

The paper evaluates direct-mapped caches (the UltraSparc2's); a natural
question it leaves open is how much of the conflict problem higher
associativity would absorb. The exact scalar model in
:mod:`repro.cache.set_assoc` answers it slowly; this module makes the
2-way case as fast as the direct-mapped path, so full paper-scale
associativity sweeps are feasible.

Why 2-way admits a vectorized form: sort accesses stably by set and
compress each set's sequence to *run heads* (drop accesses equal to
their predecessor — those always hit). The compressed sequence has
consecutive-distinct lines, so after access ``x[i-1]`` an LRU pair
holds exactly ``{x[i-1], x[i-2]}``; a run head hits iff it equals
``x[i-2]`` (it differs from ``x[i-1]`` by construction). Carried state
(the last two distinct lines per set) extends the rule across chunks by
virtually prepending two entries to each segment.

(The same trick does not generalize to higher associativity: beyond two
ways, the last A compressed entries can contain duplicates, so they no
longer enumerate the cache contents.)
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.params import CacheParams
from repro.cache.partition import partition
from repro.errors import CacheGeometryError

__all__ = ["TwoWayCache"]


class TwoWayCache:
    """Streaming 2-way LRU simulator (vectorized)."""

    def __init__(self, params: CacheParams):
        if params.assoc != 2:
            raise CacheGeometryError(
                f"TwoWayCache requires assoc=2, got {params.assoc}")
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._set_mask = np.int64(params.num_sets - 1)
        if params.num_sets <= (1 << 15):
            self._set_dtype = np.int16
        else:
            self._set_dtype = np.int32
        self.stats = CacheStats()
        # Last two distinct lines per set: mru, lru; -1/-2 invalid
        # sentinels (no byte address maps to negative lines, and the two
        # sentinels must differ so they never look like a valid pair).
        self._mru = np.full(params.num_sets, -1, dtype=np.int64)
        self._lru = np.full(params.num_sets, -2, dtype=np.int64)

    def reset(self) -> None:
        """Empty the cache AND zero the statistics (a fresh simulator)."""
        self.stats = CacheStats()
        self._mru.fill(-1)
        self._lru.fill(-2)

    def invalidate(self) -> None:
        """Empty the cache but keep the statistics (mid-stream flush)."""
        self._mru.fill(-1)
        self._lru.fill(-2)

    # ------------------------------------------------------------------
    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        if n == 0:
            return np.zeros(0, dtype=bool)

        lines = byte_addrs >> self._line_shift
        sets = (lines & self._set_mask).astype(self._set_dtype)

        order, bp = partition(sets, self.params.num_sets)
        s_sorted = sets[order]
        l_sorted = lines[order]

        # Segment starts/sets straight from the partition boundaries.
        seg_sets = np.flatnonzero(bp[1:] > bp[:-1])
        starts = bp[seg_sets]

        # Previous access's line, with carried MRU at segment starts.
        prev1 = np.empty(n, dtype=np.int64)
        prev1[1:] = l_sorted[:-1]
        prev1[starts] = self._mru[seg_sets]

        run_head = l_sorted != prev1          # non-heads always hit
        miss = np.zeros(n, dtype=bool)

        if np.any(run_head):
            # prev2: the line before prev1 *in compressed (run-head)
            # space*. Build it per segment by indexing the previous run
            # head's prev1 (which is itself the head before that).
            idx = np.flatnonzero(run_head)
            # For each run head, the preceding run head in the same
            # segment, if any:
            heads_sets = s_sorted[idx]
            head_first = np.empty(idx.size, dtype=bool)
            head_first[0] = True
            np.not_equal(heads_sets[1:], heads_sets[:-1],
                         out=head_first[1:])

            x = l_sorted[idx]                 # compressed sequence
            xm1 = prev1[idx]                  # x_{i-1} (or carried MRU)
            xm2 = np.empty(idx.size, dtype=np.int64)
            xm2[1:] = xm1[:-1]                # previous head's x_{i-1}
            hs = heads_sets[head_first].astype(np.int64)
            xm2[head_first] = self._lru[hs]
            # Second head of a segment: x_{i-2} is the carried MRU only
            # when the first head was a continuation... it cannot be: a
            # segment's first *run head* differs from carried MRU, so
            # for the second head, x_{i-2} = carried MRU exactly when
            # the first head is its immediate predecessor — which is
            # what xm1[:-1] already delivers. Only the first head per
            # segment needs the carried LRU.
            miss_heads = x != xm2
            miss[idx] = miss_heads

            # New carried state per set: last two distinct lines.
            ends = np.concatenate([starts[1:],
                                   np.array([n], dtype=starts.dtype)]) - 1
            last_line = l_sorted[ends]
            # prev distinct at end: if the segment had any run head, the
            # last run head's xm1 when the final run IS that head's run.
            # The final run's head is the last head in the segment; its
            # xm1 is the distinct line before it.
            head_positions = idx
            # last head per segment: build per-segment via searchsorted.
            seg_of_head = np.searchsorted(starts, head_positions,
                                          side="right") - 1
            last_head_of_seg = np.full(starts.size, -1, dtype=np.int64)
            last_head_of_seg[seg_of_head] = np.arange(idx.size)
            has_head = last_head_of_seg >= 0
            new_lru = self._lru[seg_sets].copy()
            prev_mru = self._mru[seg_sets]
            lh = last_head_of_seg[has_head]
            new_lru[has_head] = xm1[lh]
            # Segments with no run head keep both state entries.
            self._lru[seg_sets[has_head]] = new_lru[has_head]
            self._mru[seg_sets] = np.where(has_head, last_line, prev_mru)
        # else: every access continued the carried run; state unchanged.

        out = np.empty(n, dtype=bool)
        out[order] = miss

        self.stats.accesses += n
        self.stats.misses += int(np.count_nonzero(miss))
        return out

    # ------------------------------------------------------------------
    def contains(self, byte_addr: int) -> bool:
        line = int(byte_addr) >> self._line_shift
        s = line & int(self._set_mask)
        return bool(self._mru[s] == line or self._lru[s] == line)
