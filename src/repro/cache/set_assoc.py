"""Exact LRU set-associative cache simulation (reference model).

This scalar implementation handles arbitrary associativity with true LRU
replacement. It is the ground truth every vectorized simulator is
property-tested against, access by access: the direct-mapped path
(``assoc=1`` must agree), :class:`~repro.cache.two_way.TwoWayCache`,
and the general k-way/fully-associative stack-distance scan
(:class:`~repro.cache.assoc_scan.AssocScanCache`) — which is what
:func:`repro.cache.build_simulator` actually deploys for associative
geometries; this class is deliberately never chosen there. It also
supports the associativity studies in :mod:`repro.cache.reuse`. It
processes a few million accesses per second, which is fine for tests
and small experiments; the paper sweeps use the vectorized paths.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.params import CacheParams

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """Streaming LRU set-associative cache simulator."""

    def __init__(self, params: CacheParams):
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._set_mask = params.num_sets - 1
        self.stats = CacheStats()
        # One LRU ordered-dict per set: line id -> None, most recent last.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(params.num_sets)
        ]

    def reset(self) -> None:
        """Empty the cache AND zero the statistics (a fresh simulator)."""
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    def invalidate(self) -> None:
        """Empty the cache but keep the statistics (mid-stream flush)."""
        for s in self._sets:
            s.clear()

    # ------------------------------------------------------------------
    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Simulate a chunk of accesses; return the boolean miss mask."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        miss = np.zeros(n, dtype=bool)
        if n == 0:
            return miss

        lines = (byte_addrs >> self._line_shift).tolist()
        mask = self._set_mask
        assoc = self.params.assoc
        sets = self._sets
        misses = 0

        for idx, line in enumerate(lines):
            ways = sets[line & mask]
            if line in ways:
                ways.move_to_end(line)
            else:
                miss[idx] = True
                misses += 1
                ways[line] = None
                if len(ways) > assoc:
                    ways.popitem(last=False)

        self.stats.accesses += n
        self.stats.misses += misses
        return miss

    # ------------------------------------------------------------------
    def contains(self, byte_addr: int) -> bool:
        """Whether the line holding ``byte_addr`` is currently resident."""
        line = int(byte_addr) >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def resident_lines(self) -> np.ndarray:
        """All line ids currently resident (unordered)."""
        out: list[int] = []
        for ways in self._sets:
            out.extend(ways.keys())
        return np.asarray(sorted(out), dtype=np.int64)
