"""Reuse-distance and working-set analysis.

Complements the concrete cache simulators with machine-independent
locality metrics:

* :func:`reuse_distances` — exact LRU stack distances per access,
  computed offline with a Fenwick (binary indexed) tree in O(n log n);
  an access's distance is the number of *distinct* lines touched since
  the previous access to its line (``-1`` for cold accesses).
* :func:`misses_for_capacity` — given the distances, the LRU miss count
  of any fully associative cache capacity follows immediately; this is
  how Section 1's capacity thresholds are validated independently of the
  direct-mapped simulator.
* :func:`working_set_size` — distinct lines touched in a trace.

These operate on line ids, so callers divide byte addresses by the line
size first (or pass element addresses for an element-granularity study).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reuse_distances",
    "misses_for_capacity",
    "miss_curve",
    "working_set_size",
]


class _Fenwick:
    """Fenwick tree over positions 1..n supporting prefix sums."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access in ``lines``.

    Returns an int64 array: ``dist[t]`` is the number of distinct lines
    accessed strictly between access ``t`` and the previous access to the
    same line, or ``-1`` when ``lines[t]`` is seen for the first time.

    Pure-Python O(n log n); intended for traces up to a few million
    accesses (tests, targeted studies), not full paper sweeps.
    """
    lines = np.asarray(lines)
    n = lines.size
    dist = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dist

    fen = _Fenwick(n)
    last: dict[int, int] = {}
    seq = lines.tolist()
    for t, line in enumerate(seq):
        prev = last.get(line)
        if prev is not None:
            # distinct lines in (prev, t) = count of "active" markers after prev
            dist[t] = fen.prefix(t) - fen.prefix(prev + 1)
            fen.add(prev + 1, -1)  # line's marker moves forward
        fen.add(t + 1, 1)
        last[line] = t
    return dist


def misses_for_capacity(distances: np.ndarray, capacity_lines: int) -> int:
    """LRU misses of a fully associative cache holding ``capacity_lines``.

    An access hits iff its reuse distance is non-negative and strictly
    less than the capacity.
    """
    distances = np.asarray(distances)
    hits = np.count_nonzero((distances >= 0) & (distances < capacity_lines))
    return int(distances.size - hits)


def miss_curve(distances: np.ndarray,
               capacities: np.ndarray) -> np.ndarray:
    """Miss counts for several capacities at once (vectorized)."""
    distances = np.asarray(distances)
    capacities = np.asarray(capacities)
    finite = distances[distances >= 0]
    # hits(c) = #finite distances < c  -> use a sorted search.
    finite_sorted = np.sort(finite)
    hits = np.searchsorted(finite_sorted, capacities, side="left")
    return distances.size - hits


def working_set_size(lines: np.ndarray) -> int:
    """Number of distinct lines in the trace."""
    lines = np.asarray(lines)
    if lines.size == 0:
        return 0
    return int(np.unique(lines).size)
