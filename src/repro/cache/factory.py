"""The one place where cache geometry picks a simulator.

Every internal call site that needs a level simulator for a
:class:`~repro.cache.params.CacheParams` — hierarchy construction
(:func:`repro.cache.hierarchy.build_level`), TLB modeling
(:func:`repro.cache.tlb.build_tlb`) — routes through
:func:`build_simulator`, so the geometry→implementation policy lives
here and nowhere else:

* ``assoc == 1`` — :class:`~repro.cache.direct_mapped.DirectMappedCache`,
  the counting-partition segmented scan (fastest; also the only class
  exposing the tag-shift primitives steady-state extrapolation needs);
* ``assoc == 2`` — :class:`~repro.cache.two_way.TwoWayCache`, the
  run-head-compression specialization (cheaper than the general scan
  for exactly two ways);
* anything else, fully associative included —
  :class:`~repro.cache.assoc_scan.AssocScanCache`, the vectorized exact
  LRU stack-distance scan.

The scalar :class:`~repro.cache.set_assoc.SetAssociativeCache` is never
chosen: it remains the ground-truth reference the fast paths are
differentially tested against.
"""

from __future__ import annotations

from repro.cache.assoc_scan import AssocScanCache
from repro.cache.base import CacheLevel
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.params import CacheParams
from repro.cache.two_way import TwoWayCache

__all__ = ["build_simulator"]


def build_simulator(params: CacheParams) -> CacheLevel:
    """Pick the fastest exact simulator able to model ``params``."""
    if params.is_direct_mapped:
        return DirectMappedCache(params)
    if params.assoc == 2:
        return TwoWayCache(params)
    return AssocScanCache(params)
