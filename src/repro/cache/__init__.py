"""Trace-driven cache simulation substrate.

The paper evaluates its transformations with simulated miss rates on the
UltraSparc2's 16K direct-mapped L1 and 2M direct-mapped L2. This package
provides that simulator:

* :class:`~repro.cache.params.CacheParams` — geometry (size, line,
  associativity) with byte/element conversions;
* :class:`~repro.cache.direct_mapped.DirectMappedCache` — vectorized
  (numpy sort-by-set segmented scan) direct-mapped simulator, the fast
  path used by all paper experiments;
* :class:`~repro.cache.assoc_scan.AssocScanCache` — vectorized exact
  LRU for arbitrary associativity (segmented stack-distance scan over
  the set partition), with
  :class:`~repro.cache.set_assoc.SetAssociativeCache` kept as the
  scalar ground-truth reference it is differentially tested against;
* :func:`~repro.cache.factory.build_simulator` — the single
  geometry→simulator policy (hierarchy levels and TLBs both route
  through it);
* :class:`~repro.cache.hierarchy.CacheHierarchy` — multi-level
  composition with write-around / write-allocate policies;
* :mod:`~repro.cache.partition` / :class:`~repro.cache.engine.HierarchyEngine`
  — the O(n + num_sets) counting-sort partition and the batched
  single-pass engine behind ``CacheHierarchy.run`` (bit-identical
  statistics, one partition per batch instead of one sort per chunk
  per level);
* :class:`~repro.cache.classify.MissClassifier` — shadow
  fully-associative simulation splitting misses into cold / conflict /
  capacity (the paper's Section 2-3 story, made measurable);
* :mod:`~repro.cache.reuse` — reuse-distance and working-set analysis.
"""

from repro.cache.params import CacheParams, ULTRASPARC2_L1, ULTRASPARC2_L2
from repro.cache.base import CacheStats
from repro.cache.assoc_scan import AssocScanCache
from repro.cache.classify import MISS_CLASSES, MissClassifier
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.engine import BATCH_TARGET, HierarchyEngine
from repro.cache.factory import build_simulator
from repro.cache.partition import counting_available, default_strategy, partition
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.two_way import TwoWayCache
from repro.cache.tlb import ULTRASPARC2_DTLB, build_tlb, tlb_params
from repro.cache.hierarchy import (
    CacheHierarchy,
    EngineSupport,
    HierarchyStats,
    LevelSupport,
    WritePolicy,
)

__all__ = [
    "AssocScanCache",
    "BATCH_TARGET",
    "CacheParams",
    "CacheStats",
    "EngineSupport",
    "HierarchyEngine",
    "LevelSupport",
    "MISS_CLASSES",
    "MissClassifier",
    "DirectMappedCache",
    "SetAssociativeCache",
    "TwoWayCache",
    "CacheHierarchy",
    "HierarchyStats",
    "WritePolicy",
    "build_simulator",
    "counting_available",
    "default_strategy",
    "partition",
    "ULTRASPARC2_L1",
    "ULTRASPARC2_L2",
    "ULTRASPARC2_DTLB",
    "build_tlb",
    "tlb_params",
]
