"""Vectorized direct-mapped cache simulation.

This is the fast path behind every miss-rate experiment in the paper
(both its caches are direct-mapped). The simulator never loops over
individual accesses in Python; each chunk is processed with O(n log n)
numpy work:

1. map byte addresses to line ids (shift) and set indices (mask);
2. stably sort accesses by set index — within a set's segment the
   accesses remain in program order;
3. a non-first access in a segment misses iff its line differs from the
   immediately preceding access to the same set; the first access of each
   segment compares against the carried per-set resident tag;
4. the last access of each segment becomes the new resident tag.

Step 3 is exact for direct-mapped caches because the hit/miss outcome of
an access depends only on the single line currently resident in its set,
which is always the line of the previous access to that set.

State is carried across chunks, so traces can be streamed.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.params import CacheParams
from repro.errors import CacheGeometryError

__all__ = ["DirectMappedCache"]


class DirectMappedCache:
    """Streaming direct-mapped cache simulator (vectorized).

    Parameters
    ----------
    params:
        Cache geometry; ``params.assoc`` must be 1.
    """

    def __init__(self, params: CacheParams):
        if not params.is_direct_mapped:
            raise CacheGeometryError(
                f"DirectMappedCache requires assoc=1, got {params.assoc}")
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._set_mask = np.int64(params.num_sets - 1)
        # Sorting on the narrowest dtype that holds a set index is ~5x
        # faster in numpy (radix/counting sort path); int16 covers up to
        # 32768 sets, which includes both of the paper's caches.
        if params.num_sets <= (1 << 15):
            self._set_dtype = np.int16
        elif params.num_sets <= (1 << 31):
            self._set_dtype = np.int32
        else:  # pragma: no cover - absurd geometry
            self._set_dtype = np.int64
        self._set_mask_narrow = self._set_dtype(params.num_sets - 1)
        self.stats = CacheStats()
        # Resident line id per set; -1 = invalid (no byte address maps to it).
        self._tags = np.full(params.num_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        """Empty the cache AND zero the statistics (a fresh simulator)."""
        self.stats = CacheStats()
        self._tags.fill(-1)

    def invalidate(self) -> None:
        """Empty the cache but keep the statistics (mid-stream flush)."""
        self._tags.fill(-1)

    # ------------------------------------------------------------------
    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Simulate a chunk of accesses; return the boolean miss mask."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        if n == 0:
            return np.zeros(0, dtype=bool)

        lines = byte_addrs >> self._line_shift
        # Narrow first, mask in place: the mask keeps only the low
        # log2(num_sets) bits, which a truncating downcast preserves
        # exactly, so this equals (lines & mask).astype(dtype) without
        # the intermediate full-width int64 temporary — one fewer
        # chunk-sized allocation per access on the hot path.
        sets = lines.astype(self._set_dtype)
        np.bitwise_and(sets, self._set_mask_narrow, out=sets)

        order = np.argsort(sets, kind="stable")
        s_sorted = sets[order]
        l_sorted = lines[order]

        # Segment boundaries: positions where the set index changes.
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(s_sorted[1:], s_sorted[:-1], out=first[1:])

        miss_sorted = np.empty(n, dtype=bool)
        if n > 1:
            np.not_equal(l_sorted[1:], l_sorted[:-1], out=miss_sorted[1:])
        starts = np.flatnonzero(first)
        # First access of each segment consults the carried resident tag.
        miss_sorted[starts] = self._tags[s_sorted[starts]] != l_sorted[starts]

        # Last access of each segment leaves its line resident.
        ends = np.concatenate([starts[1:], np.array([n], dtype=starts.dtype)]) - 1
        self._tags[s_sorted[ends]] = l_sorted[ends]

        miss = np.empty(n, dtype=bool)
        miss[order] = miss_sorted

        self.stats.accesses += n
        self.stats.misses += int(np.count_nonzero(miss))
        return miss

    # ------------------------------------------------------------------
    def contains(self, byte_addr: int) -> bool:
        """Whether the line holding ``byte_addr`` is currently resident."""
        line = byte_addr >> self._line_shift
        return bool(self._tags[line & int(self._set_mask)] == line)

    def resident_lines(self) -> np.ndarray:
        """Line ids currently in the cache (for inspection/tests)."""
        return self._tags[self._tags >= 0].copy()
