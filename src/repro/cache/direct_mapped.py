"""Vectorized direct-mapped cache simulation.

This is the fast path behind every miss-rate experiment in the paper
(both its caches are direct-mapped). The simulator never loops over
individual accesses in Python; each chunk is processed with
O(n + num_sets) numpy/scipy work:

1. map byte addresses to line ids (shift) and set indices (mask);
2. stably partition accesses by set index
   (:func:`repro.cache.partition.partition` — counting sort, or the
   original stable argsort as fallback; identical permutation either
   way) — within a set's segment the accesses remain in program order;
3. a non-first access in a segment misses iff its line differs from the
   immediately preceding access to the same set; the first access of each
   segment compares against the carried per-set resident tag;
4. the last access of each segment becomes the new resident tag.

Step 3 is exact for direct-mapped caches because the hit/miss outcome of
an access depends only on the single line currently resident in its set,
which is always the line of the previous access to that set.

State is carried across chunks, so traces can be streamed.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.params import CacheParams
from repro.cache.partition import counting_available, partition
from repro.errors import CacheGeometryError

__all__ = ["DirectMappedCache"]


class DirectMappedCache:
    """Streaming direct-mapped cache simulator (vectorized).

    Parameters
    ----------
    params:
        Cache geometry; ``params.assoc`` must be 1.
    """

    def __init__(self, params: CacheParams):
        if not params.is_direct_mapped:
            raise CacheGeometryError(
                f"DirectMappedCache requires assoc=1, got {params.assoc}")
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._set_mask = np.int64(params.num_sets - 1)
        # Set-index dtype: the counting partition wants int32 directly
        # (its scatter kernel is compiled for 32-bit indices); the
        # argsort fallback is ~5x faster on the narrowest dtype that
        # holds a set index (numpy's radix path) — int16 covers up to
        # 32768 sets, which includes both of the paper's caches. Either
        # way :func:`repro.cache.partition.partition` re-narrows as it
        # needs, this just avoids a conversion on the hot path.
        if counting_available() and params.num_sets <= (1 << 31):
            self._set_dtype = np.int32
        elif params.num_sets <= (1 << 15):
            self._set_dtype = np.int16
        elif params.num_sets <= (1 << 31):
            self._set_dtype = np.int32
        else:  # pragma: no cover - absurd geometry
            self._set_dtype = np.int64
        self._set_mask_narrow = self._set_dtype(params.num_sets - 1)
        self.stats = CacheStats()
        # Resident line id per set; -1 = invalid (no byte address maps to it).
        self._tags = np.full(params.num_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        """Empty the cache AND zero the statistics (a fresh simulator)."""
        self.stats = CacheStats()
        self._tags.fill(-1)

    def invalidate(self) -> None:
        """Empty the cache but keep the statistics (mid-stream flush)."""
        self._tags.fill(-1)

    # ------------------------------------------------------------------
    def set_index(self, lines: np.ndarray) -> np.ndarray:
        """Set indices for line ids, in the partition-friendly dtype.

        Narrow first, mask in place: the mask keeps only the low
        log2(num_sets) bits, which a truncating downcast preserves
        exactly, so this equals ``(lines & mask).astype(dtype)`` without
        the intermediate full-width int64 temporary — one fewer
        chunk-sized allocation per access on the hot path.
        """
        sets = lines.astype(self._set_dtype)
        np.bitwise_and(sets, self._set_mask_narrow, out=sets)
        return sets

    def access_grouped(self, l_sorted: np.ndarray,
                       bp: np.ndarray) -> tuple[np.ndarray, int]:
        """Simulate a set-partitioned line stream against carried tags.

        ``l_sorted`` holds line ids grouped by set index (program order
        within each group) and ``bp`` the group boundaries as returned
        by :func:`repro.cache.partition.partition` (set ``s`` occupies
        ``l_sorted[bp[s]:bp[s + 1]]``). Returns ``(miss_sorted,
        n_miss)`` in the partitioned order and updates the resident
        tags; the caller owns statistics (this is the shared kernel
        under both :meth:`access` and the batched hierarchy engine,
        which account accesses differently).
        """
        n = l_sorted.size
        miss_sorted = np.empty(n, dtype=bool)
        if n == 0:
            return miss_sorted, 0
        if n > 1:
            np.not_equal(l_sorted[1:], l_sorted[:-1], out=miss_sorted[1:])
        occupied = np.flatnonzero(bp[1:] > bp[:-1])  # sets with accesses
        starts = bp[occupied]
        # First access of each segment consults the carried resident tag
        # (overwriting the meaningless cross-segment comparison there).
        miss_sorted[starts] = self._tags[occupied] != l_sorted[starts]
        # Last access of each segment leaves its line resident.
        self._tags[occupied] = l_sorted[bp[occupied + 1] - 1]
        return miss_sorted, int(np.count_nonzero(miss_sorted))

    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Simulate a chunk of accesses; return the boolean miss mask."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        if n == 0:
            return np.zeros(0, dtype=bool)

        lines = byte_addrs >> self._line_shift
        order, bp = partition(self.set_index(lines), self.params.num_sets)
        miss_sorted, n_miss = self.access_grouped(lines[order], bp)

        miss = np.empty(n, dtype=bool)
        miss[order] = miss_sorted

        self.stats.accesses += n
        self.stats.misses += n_miss
        return miss

    # ------------------------------------------------------------------
    # tag-state primitives for steady-state extrapolation
    # ------------------------------------------------------------------
    def tags_snapshot(self) -> np.ndarray:
        """A copy of the per-set resident line ids (-1 = empty set)."""
        return self._tags.copy()

    def shifted_tags(self, base: np.ndarray, d_lines: int) -> np.ndarray:
        """``base`` advanced by ``d_lines``: the tag array a stream
        shifted by ``d_lines`` cache lines would leave behind.

        A line ``L`` resident in set ``L & (S-1)`` maps to line
        ``L + d`` resident in set ``(L + d) & (S-1)`` — a roll of the
        tag array by ``d mod S`` with ``d`` added to occupied entries.
        """
        rolled = np.roll(base, int(d_lines) % self.params.num_sets)
        return np.where(rolled >= 0, rolled + np.int64(d_lines),
                        np.int64(-1))

    def tags_equal_shifted(self, base: np.ndarray, d_lines: int) -> bool:
        """Whether the current tags equal ``base`` shifted by ``d_lines``."""
        return bool(np.array_equal(self._tags,
                                   self.shifted_tags(base, d_lines)))

    def apply_tag_shift(self, d_lines: int) -> None:
        """Replace the tags with their own shift (state fast-forward)."""
        self._tags = self.shifted_tags(self._tags, d_lines)

    # ------------------------------------------------------------------
    def contains(self, byte_addr: int) -> bool:
        """Whether the line holding ``byte_addr`` is currently resident."""
        line = byte_addr >> self._line_shift
        return bool(self._tags[line & int(self._set_mask)] == line)

    def resident_lines(self) -> np.ndarray:
        """Line ids currently in the cache (for inspection/tests)."""
        return self._tags[self._tags >= 0].copy()
