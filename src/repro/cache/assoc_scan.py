"""Vectorized exact-LRU set-associative simulation (segmented scan).

The scalar reference model (:mod:`repro.cache.set_assoc`) walks one
OrderedDict per set, a few million accesses per second. This module
resolves the same exact LRU hits/misses with segmented numpy scans and
no Python-level per-access loop, for *any* associativity — k-way levels
and fully associative TLBs included. The direct-mapped
(:mod:`repro.cache.direct_mapped`) and 2-way (:mod:`repro.cache.two_way`)
specializations stay faster for their geometries; this class covers
everything they cannot (see :func:`repro.cache.factory.build_simulator`).

The window algorithm, given accesses stably partitioned by set
(:func:`repro.cache.partition.partition` — program order within each
set's segment):

1. **Ghost prepend.** Each occupied set's carried LRU stack (at most
   ``assoc`` lines) is prepended to its segment in LRU-to-MRU order.
   Replaying those "ghost" accesses reconstructs the set's exact LRU
   state, so carried state needs no special-casing anywhere else; ghost
   verdicts are discarded at the end.
2. **Run-head compression.** An access equal to its predecessor in the
   same segment always hits and removing it changes no other access's
   stack distance (its duplicate neighbour keeps the line in every
   enclosing interval), so only run heads are scanned — stencil traces
   compress severalfold (spatial locality), TLB page traces by orders
   of magnitude.
3. **Previous occurrence.** ``P[i]`` = the previous compressed position
   of line ``i`` (-1 if none), from one stable sort of the line ids.
   Equal lines share a set and segments are contiguous, so ``P`` never
   crosses a segment boundary. For ``assoc == 1`` the scan ends here:
   compression makes every run head a direct-mapped miss.
4. **Stack distance.** With segment-relative positions ``p``, the
   number of distinct lines strictly between an access and its previous
   occurrence is ``d[i] = C[i] - p[P[i]] - 1`` where
   ``C[i] = #{t < i, same segment : p[P[t]] <= p[P[i]]}``: positions at
   or before ``P[i]`` contribute exactly ``p[P[i]] + 1`` (every ``P``
   points strictly backwards), and positions inside the interval count
   precisely when they are the first occurrence of their line there —
   one per distinct line. ``C`` is a dominance count, computed by a
   vectorized bottom-up merge count with *segment-aligned* blocks: per
   power-of-two width, one sort + ``searchsorted`` counts each ordered
   pair at the single width where its positions split into the two
   halves of one block, so the level count is ``log2`` of the longest
   segment, not of the window.
5. **Verdict and state.** A run head misses iff ``P[i] == -1`` (line
   not resident) or ``d[i] >= assoc`` (pushed out since last use);
   non-heads hit. The new per-set stack is each segment's last
   ``assoc`` distinct lines by recency — the last-occurrence positions,
   which ascend by recency within a segment.

Bit-for-bit identity with :class:`SetAssociativeCache` (including
chunk-split invariance and mid-stream ``invalidate()``) is enforced by
the differential tests in ``tests/test_cache_assoc_scan.py``.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.params import CacheParams
from repro.cache.partition import counting_available, partition

__all__ = ["AssocScanCache"]

#: Addresses per internally simulated window for direct ``access()``
#: calls: bounds the scratch arrays (a few MB at this size) while
#: amortizing the per-window partition and ghost-replay costs.
_WINDOW = 1 << 16


def _seg_prefix_leq(vals: np.ndarray, rel: np.ndarray, seg: np.ndarray,
                    seg_len: np.ndarray) -> np.ndarray:
    """``C[i] = #{t < i, seg[t] == seg[i] : vals[t] <= vals[i]}``.

    ``rel`` holds segment-relative positions, ``seg`` the segment id
    per element, ``seg_len`` each segment's length. Bottom-up merge
    count: at width ``w`` every position pairs the halves of one
    ``2w``-aligned block *within its segment*; each same-segment
    ordered pair ``(t, i)`` splits into the two halves of one block at
    exactly one width (the highest differing bit of their relative
    positions), so summing per-width left-half counts over all widths
    counts each pair once. Per width: one sort of block-offset
    composite keys plus a ``searchsorted`` — no per-element Python.
    """
    m = vals.size
    C = np.zeros(m, dtype=np.int64)
    longest = int(seg_len.max()) if seg_len.size else 0
    if m < 2 or longest < 2:
        return C
    # Composite key = block * M + shifted value; M exceeds the value
    # span so keys order by (block, value). vals >= -1 here
    # (previous-occurrence positions), so the +1 shift keeps every key
    # component non-negative.
    shifted = vals + np.int64(1)
    M = np.int64(int(shifted.max()) + 1)
    level = 0
    while (1 << level) < longest:
        # Segment-aligned blocks of size 2w: block_base reserves a
        # disjoint block-id range per segment so blocks never span
        # segments (cross-segment pairs must not be counted).
        nblk_seg = (seg_len + (2 << level) - 1) >> (level + 1)
        block_base = np.zeros(seg_len.size + 1, dtype=np.int64)
        np.cumsum(nblk_seg, out=block_base[1:])
        blk = block_base[seg] + (rel >> (level + 1))
        right = ((rel >> level) & 1) == 1
        nblk = int(block_base[-1])
        lkeys = blk[~right] * M + shifted[~right]
        lkeys.sort()
        pos = np.searchsorted(lkeys, blk[right] * M + shifted[right],
                              side="right")
        before = np.zeros(nblk + 1, dtype=np.int64)
        np.cumsum(np.bincount(blk[~right], minlength=nblk), out=before[1:])
        C[right] += pos - before[blk[right]]
        level += 1
    return C


class AssocScanCache:
    """Streaming exact-LRU set-associative simulator (vectorized).

    Parameters
    ----------
    params:
        Cache geometry; any ``assoc >= 1`` (``num_sets == 1`` models a
        fully associative cache, e.g. a TLB).
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._set_mask = params.num_sets - 1
        if counting_available() and params.num_sets <= (1 << 31):
            self._set_dtype = np.int32
        elif params.num_sets <= (1 << 15):
            self._set_dtype = np.int16
        else:
            self._set_dtype = np.int32
        self._set_mask_narrow = self._set_dtype(params.num_sets - 1)
        self.stats = CacheStats()
        # Per-set LRU stack: row ``s`` holds its resident lines in
        # columns [assoc - depth[s], assoc), LRU first, MRU last;
        # unused columns are -1 (no byte address maps to a negative
        # line id).
        self._stack = np.full((params.num_sets, params.assoc), -1,
                              dtype=np.int64)
        self._depth = np.zeros(params.num_sets, dtype=np.int64)

    def reset(self) -> None:
        """Empty the cache AND zero the statistics (a fresh simulator)."""
        self.stats = CacheStats()
        self._stack.fill(-1)
        self._depth.fill(0)

    def invalidate(self) -> None:
        """Empty the cache but keep the statistics (mid-stream flush)."""
        self._stack.fill(-1)
        self._depth.fill(0)

    # ------------------------------------------------------------------
    def set_index(self, lines: np.ndarray) -> np.ndarray:
        """Set indices for line ids, in the partition-friendly dtype.

        Same narrow-then-mask trick as the direct-mapped simulator: the
        truncating downcast preserves the low ``log2(num_sets)`` bits
        the mask keeps, avoiding a full-width int64 temporary.
        """
        sets = lines.astype(self._set_dtype)
        np.bitwise_and(sets, self._set_mask_narrow, out=sets)
        return sets

    def access_grouped(self, l_sorted: np.ndarray,
                       bp: np.ndarray) -> tuple[np.ndarray, int]:
        """Simulate a set-partitioned line stream against carried state.

        Same contract as
        :meth:`repro.cache.direct_mapped.DirectMappedCache.access_grouped`:
        ``l_sorted`` holds line ids grouped by set index (program order
        within each group), ``bp`` the partition boundaries; returns
        ``(miss_sorted, n_miss)`` in the partitioned order and updates
        the per-set LRU stacks. The caller owns statistics.
        """
        n = l_sorted.size
        if n == 0:
            return np.zeros(0, dtype=bool), 0
        A = self.params.assoc

        occ = np.flatnonzero(bp[1:] > bp[:-1])   # occupied set ids
        seg_start = bp[occ]
        seg_len = bp[occ + 1] - seg_start
        depth = self._depth[occ]                 # ghosts per segment
        cum = np.cumsum(depth)                   # inclusive ghost totals
        cum_excl = cum - depth
        total_ghosts = int(cum[-1])
        m = n + total_ghosts

        # Extended array: each segment prefixed by its ghost stack.
        seg_id = np.repeat(np.arange(occ.size), seg_len)
        real_pos = np.arange(n, dtype=np.int64) + cum[seg_id]
        ext_start = seg_start + cum_excl
        ext = np.empty(m, dtype=np.int64)
        ext[real_pos] = l_sorted
        if total_ghosts:
            ghost_seg = np.repeat(np.arange(occ.size), depth)
            ghost_j = (np.arange(total_ghosts, dtype=np.int64)
                       - cum_excl[ghost_seg])
            ext[ext_start[ghost_seg] + ghost_j] = \
                self._stack[occ[ghost_seg], A - depth[ghost_seg] + ghost_j]

        # Run-head compression: an access equal to its in-segment
        # predecessor always hits and removing it changes no stack
        # distance (see module docstring); only heads are scanned.
        head = np.empty(m, dtype=bool)
        head[0] = True
        np.not_equal(ext[1:], ext[:-1], out=head[1:])
        head[ext_start] = True
        hidx = np.flatnonzero(head)
        core = ext[hidx]
        mc = core.size
        # Compressed-space segment starts/lengths and per-element
        # segment-relative positions.
        hcount = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(head, out=hcount[1:])
        c_start = hcount[ext_start]
        c_len = np.empty(occ.size, dtype=np.int64)
        c_len[:-1] = c_start[1:] - c_start[:-1]
        c_len[-1] = mc - c_start[-1]
        c_seg = np.repeat(np.arange(occ.size), c_len)
        rel = np.arange(mc, dtype=np.int64) - c_start[c_seg]

        # Previous occurrence of each line (-1 = first in window),
        # segment-relative: equal lines always share a segment.
        order2 = np.argsort(core, kind="stable")
        P = np.full(mc, -1, dtype=np.int64)
        if mc > 1:
            c2 = core[order2]
            P[order2[1:]] = np.where(c2[1:] == c2[:-1], order2[:-1],
                                     np.int64(-1))
        seen = P >= 0
        Prel = np.where(seen, P - c_start[c_seg], np.int64(-1))

        # Verdict per run head: a distinct-line change always misses a
        # direct-mapped set; for A >= 2, resident iff the stack
        # distance (distinct lines since last use) stays below A.
        if A == 1 or not seen.any():
            miss_core = ~seen if A > 1 else np.ones(mc, dtype=bool)
        else:
            C = _seg_prefix_leq(Prel, rel, c_seg, c_len)
            miss_core = ~seen
            np.logical_or(miss_core, C - Prel - 1 >= A, out=miss_core)
        miss_ext = np.zeros(m, dtype=bool)   # non-heads hit
        miss_ext[hidx] = miss_core
        miss_sorted = miss_ext[real_pos]

        # New carried state: each segment's last A distinct lines by
        # recency. Last occurrences ascend by recency within a segment
        # (position order IS recency order), so the per-segment tail of
        # length A, MRU in the last column, is the new stack.
        last = np.ones(mc, dtype=bool)
        last[P[seen]] = False
        last_pos = np.flatnonzero(last)
        seg_of = c_seg[last_pos]
        counts = np.bincount(seg_of, minlength=occ.size)
        rank_from_end = (np.cumsum(counts)[seg_of] - 1
                         - np.arange(last_pos.size))
        keep = rank_from_end < A
        self._stack[occ] = -1
        self._stack[occ[seg_of[keep]], A - 1 - rank_from_end[keep]] = \
            core[last_pos[keep]]
        self._depth[occ] = np.minimum(counts, A)
        return miss_sorted, int(np.count_nonzero(miss_sorted))

    def access(self, byte_addrs: np.ndarray) -> np.ndarray:
        """Simulate a chunk of accesses; return the boolean miss mask."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        fully_assoc = self.params.num_sets == 1
        for s in range(0, n, _WINDOW):
            window = byte_addrs[s:s + _WINDOW]
            lines = window >> self._line_shift
            if fully_assoc:
                # One set: the stream is already "partitioned".
                bp = np.array([0, lines.size], dtype=np.int64)
                miss_sorted, _ = self.access_grouped(lines, bp)
                out[s:s + _WINDOW] = miss_sorted
            else:
                order, bp = partition(self.set_index(lines),
                                      self.params.num_sets)
                miss_sorted, _ = self.access_grouped(lines[order], bp)
                out[s:s + _WINDOW][order] = miss_sorted
        self.stats.accesses += n
        self.stats.misses += int(np.count_nonzero(out))
        return out

    # ------------------------------------------------------------------
    def contains(self, byte_addr: int) -> bool:
        """Whether the line holding ``byte_addr`` is currently resident."""
        line = int(byte_addr) >> self._line_shift
        return bool((self._stack[line & self._set_mask] == line).any())

    def resident_lines(self) -> np.ndarray:
        """All line ids currently resident (sorted)."""
        return np.sort(self._stack[self._stack >= 0])
