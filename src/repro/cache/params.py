"""Cache geometry parameters.

All experiments in the paper use the UltraSparc2's caches:

* L1: 16 KB, direct-mapped, 32-byte lines, write-through non-allocating
  (the paper's "write-around" assumption);
* L2: 2 MB, direct-mapped, 64-byte lines.

The tile-selection algorithms reason in **elements** (the paper's
``C_s = 2048`` for the 16K L1 holding float64), so :class:`CacheParams`
offers both byte- and element-denominated views.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheGeometryError

__all__ = ["CacheParams", "ULTRASPARC2_L1", "ULTRASPARC2_L2"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True, slots=True)
class CacheParams:
    """Geometry of one cache level.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes; must be a power of two.
    line_bytes:
        Cache-line size in bytes; power of two, divides ``size_bytes``.
    assoc:
        Associativity: 1 = direct-mapped, ``num_lines`` = fully
        associative.
    name:
        Label for reports ("L1", "L2", ...).
    """

    size_bytes: int
    line_bytes: int = 32
    assoc: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        if not _is_pow2(self.size_bytes):
            raise CacheGeometryError(f"cache size must be a power of two: {self}")
        if not _is_pow2(self.line_bytes):
            raise CacheGeometryError(f"line size must be a power of two: {self}")
        if self.line_bytes > self.size_bytes:
            raise CacheGeometryError(f"line larger than cache: {self}")
        if self.assoc < 1 or self.num_lines % self.assoc != 0:
            raise CacheGeometryError(
                f"associativity {self.assoc} must divide line count "
                f"{self.num_lines}: {self}"
            )

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    @property
    def is_direct_mapped(self) -> bool:
        return self.assoc == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.num_sets == 1

    # element-denominated views --------------------------------------
    def capacity_elements(self, elem_bytes: int = 8) -> int:
        """The paper's ``C_s``: how many elements the cache holds."""
        if self.size_bytes % elem_bytes:
            raise CacheGeometryError(
                f"element size {elem_bytes} does not divide cache size")
        return self.size_bytes // elem_bytes

    def line_elements(self, elem_bytes: int = 8) -> int:
        """Elements per cache line (the paper's ``L``)."""
        if self.line_bytes % elem_bytes:
            raise CacheGeometryError(
                f"element size {elem_bytes} does not divide line size")
        return self.line_bytes // elem_bytes

    # address decomposition -------------------------------------------
    def line_of(self, byte_addr):
        """Line id (byte address >> log2(line)); works on numpy arrays."""
        return byte_addr // self.line_bytes

    def set_of(self, line_id):
        """Set index of a line id; works on numpy arrays."""
        return line_id % self.num_sets

    def scaled(self, factor: int) -> "CacheParams":
        """A cache ``factor`` times larger, same line size/associativity."""
        return CacheParams(size_bytes=self.size_bytes * factor,
                           line_bytes=self.line_bytes,
                           assoc=self.assoc,
                           name=self.name)


#: The paper's 16 KB direct-mapped L1 with 32-byte lines.
ULTRASPARC2_L1 = CacheParams(size_bytes=16 * 1024, line_bytes=32, assoc=1,
                             name="L1")

#: The paper's 2 MB direct-mapped L2 with 64-byte lines.
ULTRASPARC2_L2 = CacheParams(size_bytes=2 * 1024 * 1024, line_bytes=64,
                             assoc=1, name="L2")
