"""TLB modeling: a translation buffer is just a page-granularity cache.

The paper's related work (Mitchell et al., Section 5) observes that
tile choices interact with the TLB as well as the caches: a tile that
walks many columns touches many pages, and a small fully associative
TLB can thrash even while the L1 behaves. Modeling one requires nothing
new — a TLB *is* a cache whose "line" is the page and whose capacity is
the entry count — so this module only provides the geometry helper and
a convenience simulator choice.
"""

from __future__ import annotations

from repro.cache.factory import build_simulator
from repro.cache.params import CacheParams
from repro.errors import CacheGeometryError

__all__ = ["tlb_params", "build_tlb", "ULTRASPARC2_DTLB"]


def tlb_params(entries: int, page_bytes: int = 8192,
               assoc: int | None = None, name: str = "TLB") -> CacheParams:
    """Cache geometry equivalent to a TLB.

    ``assoc=None`` means fully associative (the common case for small
    TLBs); otherwise set-associative with the given way count.
    """
    if entries < 1:
        raise CacheGeometryError("TLB needs at least one entry")
    size = entries * page_bytes
    return CacheParams(size_bytes=size, line_bytes=page_bytes,
                       assoc=entries if assoc is None else assoc,
                       name=name)


def build_tlb(params: CacheParams):
    """Simulator for a TLB geometry (exact LRU, vectorized).

    Thin wrapper over :func:`repro.cache.factory.build_simulator`; kept
    for its name — at a TLB call site "build a TLB" reads better than
    "build a simulator for the cache-equivalent geometry".
    """
    return build_simulator(params)


#: UltraSparc2's data TLB: 64 entries, fully associative, 8K pages.
ULTRASPARC2_DTLB = tlb_params(entries=64, page_bytes=8192, name="DTLB")
