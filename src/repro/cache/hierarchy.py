"""Multi-level cache hierarchy with write policies.

Composes per-level simulators so that level ``i+1`` observes exactly the
accesses that missed in level ``i`` (demand-miss filtering). Two write
policies are supported:

* **write-around** (the paper's assumption, matching the UltraSparc2's
  write-through non-allocating L1): writes never touch any cache level;
  they are counted separately and, optionally, in miss-rate denominators.
* **write-allocate**: writes behave exactly like reads.

Miss rates come in two flavours; the distinction matters when comparing
with the paper's Table 3:

* *local*  — level misses / level accesses;
* *global* — level misses / total demand references, which is how the
  paper's per-kernel "L2 miss rate" columns read (L2 rates far below
  L1 rates even though most L2 traffic hits).

Reset semantics are explicit (they used to be a trap): calling a
*level's* ``reset()`` mid-stream zeroes that level's counters without
the hierarchy noticing — its accumulated statistics silently vanish
from the final totals while the hierarchy's read/write counters keep
counting, so miss-rate denominators no longer match their numerators.
Use :meth:`CacheHierarchy.invalidate` to model a mid-stream cold
restart (contents dropped, statistics preserved by merging into the
hierarchy's carry accumulators) and :meth:`CacheHierarchy.reset` to
zero everything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.cache.assoc_scan import AssocScanCache
from repro.cache.base import CacheLevel, CacheStats
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.engine import (
    HierarchyEngine,
    shared_partition_applies,
)
from repro.cache.factory import build_simulator
from repro.cache.params import CacheParams
from repro.cache.two_way import TwoWayCache
from repro.errors import ConfigurationError
from repro.obs import metrics
from repro.trace.generator import TraceChunk
from repro.trace.runs import RunChunk

__all__ = ["WritePolicy", "CacheHierarchy", "HierarchyStats",
           "EngineSupport", "LevelSupport"]


class WritePolicy(enum.Enum):
    """How writes interact with the hierarchy."""

    WRITE_AROUND = "write-around"
    WRITE_ALLOCATE = "write-allocate"


@dataclass(slots=True)
class HierarchyStats:
    """Aggregated statistics for a simulated hierarchy run."""

    levels: list[tuple[str, CacheStats]] = field(default_factory=list)
    reads: int = 0
    writes: int = 0

    @property
    def demand_refs(self) -> int:
        """All demand references, reads plus writes."""
        return self.reads + self.writes

    def local_miss_rate(self, level: int) -> float:
        return self.levels[level][1].miss_rate

    def global_miss_rate(self, level: int, include_writes: bool = True) -> float:
        """Level misses over total references (the paper's convention)."""
        denom = self.demand_refs if include_writes else self.reads
        if denom == 0:
            return 0.0
        return self.levels[level][1].misses / denom

    def misses(self, level: int) -> int:
        return self.levels[level][1].misses

    def summary(self) -> str:
        parts = [f"refs={self.demand_refs} (r={self.reads}, w={self.writes})"]
        for name, st in self.levels:
            parts.append(f"{name}: miss={st.misses} "
                         f"local={st.miss_rate:.2%} ")
        return "  ".join(parts)


def build_level(params: CacheParams) -> CacheLevel:
    """Pick the fastest simulator able to model ``params``.

    Thin wrapper over :func:`repro.cache.factory.build_simulator`, the
    single home of the geometry→simulator policy.
    """
    return build_simulator(params)


@dataclass(frozen=True)
class LevelSupport:
    """How the batched engine will drive one hierarchy level."""

    #: The level's ``CacheParams.name``.
    name: str
    #: ``single_sort`` — one shared partition serves both levels;
    #: ``per_level`` — own partition + direct-mapped segmented scan;
    #: ``assoc_scan`` — vectorized exact-LRU path (k-way/fully-assoc
    #: stack-distance scan, or the 2-way run-head specialization);
    #: ``legacy`` — per-chunk scalar simulation.
    mode: str
    #: Machine-readable cause, mirroring the extrapolation-reason
    #: pattern (:class:`~repro.experiments.extrapolate.ExtrapolationReport`):
    #: ``classifiers_attached`` / ``shared_partition`` /
    #: ``direct_mapped`` / ``two_way_vectorized`` /
    #: ``set_associative`` / ``fully_associative`` /
    #: ``scalar_reference``.
    reason: str
    #: How the level consumes :class:`~repro.trace.runs.RunChunk`
    #: input: ``intervals`` — the closed-form per-run decomposition
    #: drives ``access_grouped`` directly (conflicting windows still
    #: materialize, exactly); ``demand`` — the level never sees runs,
    #: only the flat miss-filtered demand of the level above;
    #: ``materialize`` — runs are expanded to flat addresses first.
    run_mode: str = "materialize"
    #: Why ``run_mode`` was chosen: ``direct_mapped`` / ``lru_scan`` /
    #: ``miss_filtered`` / ``two_way_path`` / ``scalar_reference`` /
    #: ``classifiers_attached``.
    run_reason: str = "classifiers_attached"


@dataclass(frozen=True)
class EngineSupport:
    """Typed report of what :meth:`CacheHierarchy.run` will do.

    Replaces the old boolean ``engine_eligible()``: ``eligible`` keeps
    the single go/no-go bit (may the batched engine drive this run at
    all), while ``levels`` says *how* each level will be simulated and
    why — so tooling (``obs-report``, benchmarks, tests) can assert on
    coverage instead of reverse-engineering it from isinstance checks.
    """

    #: Whether run() may use the batched engine at all. False only when
    #: miss classifiers are attached: 3C classification consumes each
    #: level's per-access miss mask in stream order, which the batched
    #: engine never materializes.
    eligible: bool
    levels: tuple[LevelSupport, ...]

    def level(self, name: str) -> LevelSupport:
        """The entry for the level named ``name`` (KeyError if absent)."""
        for ls in self.levels:
            if ls.name == name:
                return ls
        raise KeyError(name)


def _run_support(lvl: CacheLevel, params: CacheParams,
                 idx: int) -> tuple[str, str]:
    """(run_mode, run_reason) for one level (see :class:`LevelSupport`)."""
    if idx > 0:
        return "demand", "miss_filtered"
    if isinstance(lvl, DirectMappedCache):
        return "intervals", "direct_mapped"
    if isinstance(lvl, AssocScanCache):
        return "intervals", "lru_scan"
    if isinstance(lvl, TwoWayCache):
        return "materialize", "two_way_path"
    return "materialize", "scalar_reference"


def _level_support(lvl: CacheLevel, params: CacheParams,
                   idx: int) -> LevelSupport:
    """Classify one level for the per-level engine path."""
    run_mode, run_reason = _run_support(lvl, params, idx)
    if isinstance(lvl, DirectMappedCache):
        return LevelSupport(params.name, "per_level", "direct_mapped",
                            run_mode, run_reason)
    if isinstance(lvl, TwoWayCache):
        return LevelSupport(params.name, "assoc_scan", "two_way_vectorized",
                            run_mode, run_reason)
    if isinstance(lvl, AssocScanCache):
        reason = ("fully_associative" if params.num_sets == 1
                  else "set_associative")
        return LevelSupport(params.name, "assoc_scan", reason,
                            run_mode, run_reason)
    # Anything else (e.g. a hand-built SetAssociativeCache) is driven
    # per-chunk through its own access() — exact but scalar.
    return LevelSupport(params.name, "legacy", "scalar_reference",
                        run_mode, run_reason)


class CacheHierarchy:
    """A stack of inclusive-filtered cache levels fed by one trace.

    Parameters
    ----------
    levels:
        Cache parameters ordered nearest-first (L1, L2, ...).
    write_policy:
        See :class:`WritePolicy`; defaults to the paper's write-around.
    """

    def __init__(self, levels: list[CacheParams],
                 write_policy: WritePolicy = WritePolicy.WRITE_AROUND):
        if not levels:
            raise ConfigurationError("hierarchy needs at least one level")
        self.params = list(levels)
        self.write_policy = write_policy
        self._levels: list[CacheLevel] = [build_level(p) for p in levels]
        # Statistics carried over from invalidated level instances, so a
        # mid-stream invalidate never loses counts (see module docstring).
        self._carry: list[CacheStats] = [CacheStats() for _ in levels]
        self._classifiers: list = [None] * len(levels)
        #: Live batching engine while a run() is in flight (see run()).
        self._engine: HierarchyEngine | None = None
        self.reads = 0
        self.writes = 0

    def _sync_engine(self) -> None:
        """Simulate anything the in-flight engine has buffered.

        Called before any operation that reads or mutates level state
        out-of-band (stats, invalidate, reset, a direct access), so
        buffered accesses land *before* the operation in stream order.
        """
        if self._engine is not None:
            self._engine.flush()

    def reset(self) -> None:
        """Zero everything: contents, per-level stats, carried stats."""
        self._sync_engine()
        for lvl in self._levels:
            lvl.reset()
        self._carry = [CacheStats() for _ in self._levels]
        for cls in self._classifiers:
            if cls is not None:
                cls.reset()
        self.reads = 0
        self.writes = 0

    def invalidate(self, level: int | None = None) -> None:
        """Drop cache *contents* without losing statistics.

        A level's live counters are merged into the hierarchy's carry
        accumulator before the level is cleared, so :meth:`stats` keeps
        reporting totals for the whole stream — the explicit way to
        model a mid-stream cold restart (context switch, flush).
        ``level=None`` invalidates every level.
        """
        self._sync_engine()
        targets = range(len(self._levels)) if level is None else [level]
        for i in targets:
            lvl = self._levels[i]
            self._carry[i].merge(lvl.stats)
            lvl.reset()
            if self._classifiers[i] is not None:
                self._classifiers[i].invalidate()

    # ------------------------------------------------------------------
    def attach_classifiers(self, classifiers: list) -> None:
        """Attach per-level miss classifiers (``None`` entries allowed).

        Each :class:`~repro.cache.classify.MissClassifier` observes
        exactly the access stream its level sees (demand-miss filtered)
        and the level's miss mask, so classified totals match
        ``CacheStats.misses`` per level.
        """
        if len(classifiers) != len(self._levels):
            raise ConfigurationError(
                f"need one classifier slot per level "
                f"({len(self._levels)}), got {len(classifiers)}")
        self._classifiers = list(classifiers)

    @property
    def classifiers(self) -> list:
        return self._classifiers

    @property
    def levels(self) -> list[CacheLevel]:
        """The live level simulators, nearest-first (shared objects)."""
        return self._levels

    def advance_stats(self, level_deltas: list[tuple[int, int]],
                      reads: int = 0, writes: int = 0) -> None:
        """Account statistics for accesses that were *not* simulated.

        ``level_deltas`` holds one ``(accesses, misses)`` pair per
        level. Used by the steady-state extrapolation path
        (:mod:`repro.experiments.extrapolate`), which proves the counts
        in closed form instead of replaying the stream.
        """
        if len(level_deltas) != len(self._levels):
            raise ConfigurationError(
                f"need one (accesses, misses) delta per level "
                f"({len(self._levels)}), got {len(level_deltas)}")
        for lvl, (da, dm) in zip(self._levels, level_deltas):
            lvl.stats.accesses += int(da)
            lvl.stats.misses += int(dm)
        self.reads += int(reads)
        self.writes += int(writes)

    # ------------------------------------------------------------------
    def _cacheable(self, byte_addrs: np.ndarray,
                   is_write: np.ndarray | None) -> np.ndarray:
        """Count reads/writes and return the write-policy-filtered stream."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        n = byte_addrs.size
        if is_write is None:
            self.reads += n
            return byte_addrs
        is_write = np.asarray(is_write, dtype=bool)
        if is_write.shape != byte_addrs.shape:
            raise ConfigurationError("is_write mask shape mismatch")
        nw = int(np.count_nonzero(is_write))
        self.writes += nw
        self.reads += n - nw
        if self.write_policy is WritePolicy.WRITE_AROUND:
            return byte_addrs[~is_write]
        return byte_addrs

    def access(self, byte_addrs: np.ndarray,
               is_write: np.ndarray | None = None) -> np.ndarray:
        """Stream one chunk through every level.

        ``is_write`` is an optional boolean mask aligned with
        ``byte_addrs``. Returns the L1 miss mask over the *cacheable*
        accesses in program order (all accesses under write-allocate,
        reads only under write-around).
        """
        self._sync_engine()
        cacheable = self._cacheable(byte_addrs, is_write)

        current = cacheable
        first_miss: np.ndarray | None = None
        for i, lvl in enumerate(self._levels):
            if current.size == 0:
                miss = np.zeros(0, dtype=bool)
            else:
                miss = lvl.access(current)
                if self._classifiers[i] is not None:
                    self._classifiers[i].classify(current, miss)
            if first_miss is None:
                first_miss = miss
            current = current[miss]
        assert first_miss is not None
        return first_miss

    # ------------------------------------------------------------------
    def engine_support(self) -> EngineSupport:
        """Typed per-level report of how :meth:`run` will simulate.

        See :class:`EngineSupport`. The classification mirrors exactly
        what :class:`~repro.cache.engine.HierarchyEngine` will do —
        the shared-partition predicate is literally shared code
        (:func:`~repro.cache.engine.shared_partition_applies`).
        """
        if any(c is not None for c in self._classifiers):
            levels = tuple(
                LevelSupport(p.name, "legacy", "classifiers_attached")
                for p in self.params)
            return EngineSupport(eligible=False, levels=levels)
        if shared_partition_applies(self._levels, self.params):
            # Run chunks are still consumed (the engine drops back to
            # per-level mode on the first one, identical statistics),
            # so report the run path the levels would actually take.
            levels = tuple(
                LevelSupport(p.name, "single_sort", "shared_partition",
                             *_run_support(lvl, p, idx))
                for idx, (lvl, p)
                in enumerate(zip(self._levels, self.params)))
            return EngineSupport(eligible=True, levels=levels)
        return EngineSupport(
            eligible=True,
            levels=tuple(_level_support(lvl, p, idx)
                         for idx, (lvl, p)
                         in enumerate(zip(self._levels, self.params))))

    def run(self, chunks, on_chunk=None, *,
            partition_strategy: str | None = None) -> HierarchyStats:
        """Consume an iterable of chunks and return the statistics.

        Each chunk is a :class:`~repro.trace.generator.TraceChunk`, an
        ``(addresses, is_write)`` pair, or a plain address array. The
        trace is consumed incrementally, so peak memory stays O(chunk
        buffer), never O(trace). ``on_chunk(addresses)`` (optional)
        fires before each chunk is consumed; the experiment runner uses
        it for budget deadlines and fault-injection ticks without
        breaking the streaming structure.

        Unless miss classifiers are attached, chunks are driven through
        the batched :class:`~repro.cache.engine.HierarchyEngine`
        (identical statistics, far fewer passes); ``partition_strategy``
        forwards a :func:`repro.cache.partition.partition` override for
        differential tests.
        """
        support = self.engine_support()
        for ls in support.levels:
            metrics.inc("repro.cache.engine_level_mode",
                        level=ls.name, mode=ls.mode)
        if not support.eligible:
            metrics.inc("repro.cache.engine_runs", mode="legacy")
            for chunk in chunks:
                if isinstance(chunk, RunChunk):
                    chunk = chunk.materialize()
                if isinstance(chunk, TraceChunk):
                    addrs, w = chunk.pair()
                elif isinstance(chunk, tuple):
                    addrs, w = chunk
                else:
                    addrs, w = chunk, None
                if on_chunk is not None:
                    on_chunk(addrs)
                self.access(addrs, w)
            return self.stats()

        engine = HierarchyEngine(self._levels, self.params,
                                 partition_strategy)
        metrics.inc("repro.cache.engine_runs", mode=engine.mode)
        around = self.write_policy is WritePolicy.WRITE_AROUND
        self._engine = engine
        try:
            for chunk in chunks:
                if isinstance(chunk, RunChunk):
                    if on_chunk is not None:
                        on_chunk(chunk)
                    self.reads += chunk.reads
                    self.writes += chunk.writes
                    engine.feed_runs(
                        chunk.read_bases if around else chunk.bases,
                        chunk.strides, chunk.counts)
                elif isinstance(chunk, TraceChunk):
                    if on_chunk is not None:
                        on_chunk(chunk.addresses)
                    self.reads += chunk.reads
                    self.writes += chunk.writes
                    engine.feed(chunk.read_addresses if around
                                else chunk.addresses)
                else:
                    if isinstance(chunk, tuple):
                        addrs, w = chunk
                    else:
                        addrs, w = chunk, None
                    if on_chunk is not None:
                        on_chunk(addrs)
                    engine.feed(self._cacheable(addrs, w))
            engine.flush()
        finally:
            self._engine = None
        return self.stats()

    def stats(self) -> HierarchyStats:
        """Totals for the whole stream, including invalidated epochs."""
        if self._engine is not None:
            self._engine.flush()
        merged = []
        for p, lvl, carry in zip(self.params, self._levels, self._carry):
            st = carry.copy()
            st.merge(lvl.stats)
            merged.append((p.name, st))
        return HierarchyStats(levels=merged, reads=self.reads,
                              writes=self.writes)
