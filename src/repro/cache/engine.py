"""Batched single-pass hierarchy engine.

:meth:`CacheHierarchy.run <repro.cache.hierarchy.CacheHierarchy.run>`
drives this engine whenever no miss classifiers are attached (3C
classification needs per-access masks the batched form never builds).
It produces **bit-for-bit** the same :class:`HierarchyStats` as the
per-chunk ``access()`` loop — the differential tests in
``tests/test_cache_engine.py`` hold it to that — by exploiting a
property both paths share: direct-mapped/LRU simulation with carried
state is *split-invariant*, so the stream may be re-batched freely
without changing a single miss.

**Windowed batching.** Every level consumes its input stream in
windows of about :data:`BATCH_TARGET` addresses. Chunks smaller than a
window (tiled schedules emit dozens of tiny per-tile chunks) are
buffered and concatenated so the fixed per-call numpy cost is paid
once per window; chunks larger than a window are *split*, because the
counting partition's scatter is 4-6x faster when its working set stays
cache-resident — a whole-trace sort would stream multi-MB temporaries
through memory for no algorithmic gain.

**Per-level demand buffering.** A level's demand stream (the misses it
forwards) is buffered the same way, so L2 is also simulated in
full-size windows instead of one small call per L1 window. Levels are
decoupled by their carried state: only the order of each level's own
input matters, and buffering preserves it.

**One partition serving two levels.** When the hierarchy is exactly
two direct-mapped levels with equal line size and ``S1 <= S2`` sets,
L1's set index is the low bits of L2's: ``set1 = set2 & (S1 - 1)``.
The engine then partitions each window once by L1 set, simulates L1,
and extracts L2's demand *in sorted space* (``l_sorted[miss]``) —
grouped by ``set1``, program-ordered within each group. Because every
L2 set's accesses fall inside a single ``set1`` group, a stable
partition of that demand by ``set2`` still yields per-L2-set program
order, so L2 is simulated exactly without ever rebuilding the demand
stream's global program order. (Concatenating such per-window demand
segments preserves the property: within a window per-set2 order is
program order, and windows arrive in program order.) For any other
geometry (the paper's 32B-L1/64B-L2 default included) the engine falls
back to one partition per level, which is still strictly cheaper than
the legacy path thanks to windowing and the counting partition
(:mod:`repro.cache.partition`).

The engine is created per ``run()`` and owns no cache state — tags and
statistics live in the level simulators exactly as before, so carried
state still flows across ``run()`` calls and mixed ``run()``/
``access()`` usage.
"""

from __future__ import annotations

import numpy as np

from repro.cache.assoc_scan import AssocScanCache
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.partition import partition, run_line_intervals
from repro.obs import metrics
from repro.trace.runs import materialize_runs

__all__ = ["HierarchyEngine", "BATCH_TARGET", "shared_partition_applies",
           "run_path_applies"]

#: Target addresses per simulated window (128 KB of int64): large
#: enough to amortize numpy call overhead, small enough that the
#: partition scatter and segment scans stay cache-resident.
BATCH_TARGET = 1 << 14

#: Window size for associative-scan levels: the LRU scan replays each
#: occupied set's carried stack as ghost accesses every window, so its
#: fixed cost (up to ``num_sets * assoc`` ghosts) wants more
#: amortization than the direct-mapped scatter does.
ASSOC_BATCH_TARGET = 1 << 16

#: Minimum predicted compression (accesses per line interval) for the
#: closed-form run path to be attempted. One interval costs roughly
#: this many times what one materialized access costs (the interval
#: pipeline pays a decomposition, a position sort, and demand
#: reconstruction the flat path never does), so below the threshold
#: materializing is simply faster — and bit-for-bit identical. Unit
#: element strides under 32-byte lines compress 4:1 (below threshold);
#: 64-byte-and-wider lines or coarser-than-element strides clear it.
RUN_PROFIT_RATIO = 6


def shared_partition_applies(levels, params) -> bool:
    """Whether one L1 partition can serve both levels (see module doc).

    Exactly two direct-mapped levels with equal line size and
    ``S1 <= S2`` sets: L1's set index is then the low bits of L2's, so
    a stable partition of L2's demand by ``set2`` can be extracted in
    L1's sorted space. Shared between the engine and
    :meth:`CacheHierarchy.engine_support
    <repro.cache.hierarchy.CacheHierarchy.engine_support>` so the
    reported mode always matches what the engine will do.
    """
    levels = list(levels)
    params = list(params)
    return (len(levels) == 2
            and isinstance(levels[0], DirectMappedCache)
            and isinstance(levels[1], DirectMappedCache)
            and params[0].line_bytes == params[1].line_bytes
            and params[0].num_sets <= params[1].num_sets)


def run_path_applies(level, params) -> bool:
    """Whether a level can consume affine runs without expanding them.

    Both eligible simulators expose the partitioned
    ``access_grouped(l_sorted, bp)`` contract the run path drives with
    a closed-form interval stream; anything else (the 2-way
    specialization, scalar references) gets materialized input instead.
    Shared between the engine and :meth:`CacheHierarchy.engine_support
    <repro.cache.hierarchy.CacheHierarchy.engine_support>`.
    """
    return isinstance(level, (DirectMappedCache, AssocScanCache))


def _runs_interleave(bases: np.ndarray, strides: np.ndarray,
                     counts: np.ndarray, shift: int, nsets: int) -> bool:
    """Whether any two runs' line intervals can overlap inside a set.

    This is the closed-form path's *exactness certificate*: a ``False``
    verdict proves no two different-line intervals of any set overlap
    in time, so each set's access subsequence is exactly its interval
    heads in start order and the window may be simulated from the
    decomposition alone, with no per-interval runtime guard.

    The proof obligation reduces as follows. Conflicts are always
    *intra*-segment — segments partition the stream, and an interval's
    position range lies inside its segment's position range — so pairs
    of runs from one segment are the only candidates. Within a segment
    all runs share one stride ``s``, so references ``a`` and ``b``
    advance in lockstep: interval ``j`` of a run occupies positions
    from ``ceil((j*W - phi)/s)`` iterations in (``W`` = line bytes,
    ``phi`` = the base's sub-line phase), and since ``ceil`` is
    monotone, intervals of ``a`` and ``b`` can only overlap when their
    relative progress ``delta = j_b - j_a`` satisfies ``delta*W <
    W + phi_b - phi_a`` and ``-delta*W < W + phi_a - phi_b`` — i.e.
    ``delta`` in {-1, 0, +1}, with ``delta = +1`` further requiring
    ``phi_b > phi_a`` and ``delta = -1`` requiring ``phi_a > phi_b``
    (both made non-strict below, absorbing integer-rounding boundary
    ties into the safe direction). Same-set-different-line pairs also
    need ``delta ≡ lo_a - lo_b (mod nsets)`` with distinct lines, and
    ``delta`` must be realizable within both spans. Single-iteration
    runs are single-position intervals and cannot overlap anything.
    Run-edge intervals (clamped starts, truncated ends) occupy subsets
    of their ideal ranges, so the test remains sound for them.

    Cost: O(segments * refs^2) vectorized residue arithmetic — noise
    next to the window's decomposition. Conflicted geometry is usually
    visible in any one segment (the pairwise byte offsets between
    references are fixed across a stream), so a three-segment sample
    runs first and short-circuits the common conflicted case before
    the full certificate is attempted.
    """
    nseg = bases.shape[0]
    sample = np.unique([0, nseg // 2, nseg - 1])
    for sel in (sample, None):
        g = sel if sel is not None else np.arange(nseg)
        g = g[counts[g] > 1]
        if g.size == 0:
            continue
        b = bases[g]
        lo = b >> shift
        span = ((b + (counts[g, None] - 1) * strides[g, None]) >> shift
                ) - lo + 1
        phi = b - (lo << shift)
        D = lo[:, :, None] - lo[:, None, :]
        r = D % nsets
        sa, sb = span[:, :, None], span[:, None, :]
        pa, pb = phi[:, :, None], phi[:, None, :]
        c0 = (r == 0) & (D != 0)
        c1 = ((r == 1) & (D != 1) & (pa <= pb)
              & (np.minimum(sa, sb - 1) > 0))
        cm = ((r == nsets - 1) & (D != -1) & (pa >= pb)
              & (np.minimum(sa - 1, sb) > 0))
        if bool(np.any(c0 | c1 | cm)):
            return True
        if sel is None:
            return False
    return False


class HierarchyEngine:
    """Buffers cacheable addresses and simulates them level by level.

    Parameters
    ----------
    levels:
        The hierarchy's live level simulators (state + stats holders).
    params:
        Matching :class:`~repro.cache.params.CacheParams` per level.
    strategy:
        Partition strategy override forwarded to
        :func:`repro.cache.partition.partition` (tests force
        ``"argsort"`` to diff the two paths); ``None`` = automatic.
    """

    def __init__(self, levels, params, strategy: str | None = None):
        self._levels = list(levels)
        self._params = list(params)
        self._strategy = strategy
        self._shifts = [int(p.line_bytes).bit_length() - 1 for p in params]
        self._nsets = [p.num_sets for p in params]
        self._nlev = len(self._levels)
        self._bufs: list[list[np.ndarray]] = [[] for _ in levels]
        self._pending = [0] * self._nlev
        self._wins = [ASSOC_BATCH_TARGET
                      if isinstance(lvl, AssocScanCache) else BATCH_TARGET
                      for lvl in self._levels]
        self._shared = shared_partition_applies(self._levels, self._params)

    @property
    def mode(self) -> str:
        """``"shared"`` (one partition feeds both levels) or ``"per_level"``."""
        return "shared" if self._shared else "per_level"

    # ------------------------------------------------------------------
    def feed(self, byte_addrs: np.ndarray) -> None:
        """Buffer one cacheable (already write-filtered) address array."""
        self._feed_level(0, byte_addrs)

    def feed_runs(self, bases: np.ndarray, strides: np.ndarray,
                  counts: np.ndarray) -> None:
        """Consume one chunk of cacheable affine runs (program order).

        ``bases`` is ``(n_segments, n_refs)`` — already write-filtered
        by the caller — with per-segment ``strides``/``counts`` (see
        :class:`~repro.trace.runs.RunChunk`). Eligible windows are
        simulated at L1 straight from the closed-form interval
        decomposition; anything the closed form cannot prove exact
        (per-set interleaving, out-of-range strides, a non-partitioned
        L1 simulator) is materialized and driven through the ordinary
        flat path — statistics are bit-for-bit identical either way.
        """
        nseg, nrefs = bases.shape
        if nseg == 0 or nrefs == 0:
            return
        total = int(counts.sum()) * nrefs
        if total == 0:
            return
        lvl = self._levels[0]
        line_bytes = self._params[0].line_bytes
        stride_ok = total < (1 << 31) and bool(np.all(
            ((strides > 0) & (strides <= line_bytes))
            | ((strides == 0) & (counts == 1))))
        if not run_path_applies(lvl, self._params[0]) or not stride_ok:
            outcome = ("stride_fallback" if run_path_applies(
                lvl, self._params[0]) else "level_fallback")
            metrics.inc("repro.cache.run_windows", outcome=outcome)
            metrics.inc("repro.cache.run_elements", total,
                        path="materialized")
            self._feed_level(
                0, materialize_runs(bases, strides, counts).reshape(-1))
            return
        shift = self._shifts[0]
        nsets = self._nsets[0]
        # Closed-form interval count — the run path's whole cost scales
        # with it, so low compression means the flat path wins even
        # though both are exact. Predicted without decomposing.
        nv = int(((bases + (counts[:, None] - 1) * strides[:, None])
                  >> shift).sum() - (bases >> shift).sum()) + bases.size
        if total < nv * RUN_PROFIT_RATIO:
            metrics.inc("repro.cache.run_windows", outcome="unprofitable")
            metrics.inc("repro.cache.run_elements", total,
                        path="materialized")
            self._feed_level(
                0, materialize_runs(bases, strides, counts).reshape(-1))
            return
        if _runs_interleave(bases, strides, counts, shift, nsets):
            metrics.inc("repro.cache.run_windows", outcome="conflict")
            metrics.inc("repro.cache.run_elements", total,
                        path="materialized")
            self._feed_level(
                0, materialize_runs(bases, strides, counts).reshape(-1))
            return
        # Run windows are simulated inline, so L1's flat buffer must
        # drain first to keep the level's input in stream order; in
        # shared mode L2's buffered demand is sorted-space line ids,
        # incompatible with the byte demand runs produce, so the whole
        # engine drains and stays per-level from here on (statistics
        # are identical, shared mode is purely a speed mode).
        if self._shared:
            self.flush()
            self._shared = False
        else:
            self._flush_level(0)
        demand = self._run_window(bases, strides, counts)
        metrics.inc("repro.cache.run_windows", outcome="runs")
        metrics.inc("repro.cache.run_elements", total, path="runs")
        if self._nlev > 1 and demand.size:
            self._feed_level(1, demand)

    def _run_window(self, bases: np.ndarray, strides: np.ndarray,
                    counts: np.ndarray) -> np.ndarray:
        """Simulate one run window at L1 without expanding addresses.

        Returns the window's demand stream (missed byte addresses in
        program order). The caller must have certified the window with
        :func:`_runs_interleave` first — the closed form is only exact
        when no two different-line intervals of a set overlap in time.

        Exactness then rests on three facts the flat simulators
        already rely on: statistics depend only on each set's access
        subsequence in program order; an access equal to its set
        predecessor always hits without disturbing LRU state (so each
        interval contributes its head access only); and with no
        overlap, the set's subsequence *is* the interval heads in
        start order.
        """
        lvl = self._levels[0]
        nseg, nrefs = bases.shape
        shift = self._shifts[0]
        nsets = self._nsets[0]
        run, q, line, p, pe = run_line_intervals(
            bases, strides, counts, shift)
        nv = p.size
        total = int(counts.sum()) * nrefs
        # Two cheap stable passes instead of one comparison sort on a
        # combined key: ``p`` is a concatenation of per-run ascending
        # sequences (an int32 radix/timsort best case), and the set
        # partition is the counting sort the flat path already uses.
        # Stability makes the per-set streams start-position-ordered,
        # and ``ip[order]`` maps sorted space back to interval rows.
        ip = np.argsort(p, kind="stable")
        order, bp = partition(line[ip] & np.int64(nsets - 1), nsets,
                              self._strategy)
        idx = ip[order]
        lg = line[idx]
        starts = bp[np.flatnonzero(bp[1:] > bp[:-1])]
        head = np.empty(nv, dtype=bool)
        head[0] = True
        np.not_equal(lg[1:], lg[:-1], out=head[1:])
        head[starts] = True
        hidx = np.flatnonzero(head)
        prefix = np.zeros(nv + 1, dtype=np.int32)
        np.cumsum(head, out=prefix[1:])
        miss_core, nmiss = lvl.access_grouped(
            lg[hidx], prefix[bp].astype(np.int64))
        lvl.stats.accesses += total
        lvl.stats.misses += nmiss
        if self._nlev == 1:
            return np.empty(0, dtype=np.int64)
        midx = np.flatnonzero(miss_core)
        if midx.size == 0:
            return np.empty(0, dtype=np.int64)
        # The missed heads' byte addresses, restored to program order
        # (``p`` *is* the program-order position), are exactly the flat
        # path's demand-miss stream. Everything here is sized by the
        # miss count, not the interval count — the common mostly-hit
        # window pays nothing for demand reconstruction.
        iv = idx[hidx[midx]]
        iv = iv[np.argsort(p[iv], kind="stable")]
        bf = bases.reshape(-1)
        s_runf = np.maximum(np.repeat(strides, nrefs), 1)
        riv = run[iv]
        x = line[iv] << shift
        x -= bf[riv]
        s_iv = s_runf[riv]
        x += s_iv
        x -= 1
        if bool(np.all(s_runf & (s_runf - 1) == 0)):
            sh_runf = np.round(np.log2(s_runf)).astype(np.int64)
            t = x >> sh_runf[riv]             # == ceil((line<<L - b)/s)
        else:
            t = x // s_iv
        np.maximum(t, 0, out=t)               # run-first intervals: t = 0
        t *= s_iv
        t += bf[riv]
        return t

    def flush(self) -> None:
        """Simulate everything buffered so far (idempotent when empty)."""
        for i in range(self._nlev):
            # Flushing level i feeds level i+1's buffer, which the next
            # iteration drains — nearest level first, by construction.
            self._flush_level(i)

    # ------------------------------------------------------------------
    def _feed_level(self, i: int, stream: np.ndarray) -> None:
        if stream.size == 0:
            return
        self._bufs[i].append(stream)
        self._pending[i] += stream.size
        if self._pending[i] >= self._wins[i]:
            self._flush_level(i)

    def _flush_level(self, i: int) -> None:
        buf = self._bufs[i]
        if not buf:
            return
        batch = buf[0] if len(buf) == 1 else np.concatenate(buf)
        buf.clear()
        self._pending[i] = 0
        forward = i + 1 < self._nlev
        win = self._wins[i]
        for s in range(0, batch.size, win):
            demand = self._process(i, batch[s:s + win])
            if forward and demand is not None:
                self._feed_level(i + 1, demand)

    def _process(self, i: int, window: np.ndarray) -> np.ndarray | None:
        """Simulate one window at level ``i``; return its demand stream.

        In shared mode the demand (and level 1's input) are *line ids*
        in sorted-space order; in per-level mode everything stays byte
        addresses in program order.
        """
        lvl = self._levels[i]
        last = i + 1 == self._nlev
        if i == 0:
            metrics.inc("repro.cache.batches")
        if self._shared:
            lines = window if i else window >> self._shifts[0]
            order, bp = partition(lvl.set_index(lines), self._nsets[i],
                                  self._strategy)
            l_sorted = lines[order]
            miss_sorted, nmiss = lvl.access_grouped(l_sorted, bp)
            lvl.stats.accesses += window.size
            lvl.stats.misses += nmiss
            if last:
                return None
            metrics.inc("repro.cache.shared_sort_hits")
            return l_sorted[miss_sorted]
        if isinstance(lvl, (DirectMappedCache, AssocScanCache)):
            # Both expose the same caller-owns-stats partitioned
            # contract: set_index() + access_grouped(l_sorted, bp).
            lines = window >> self._shifts[i]
            order, bp = partition(lvl.set_index(lines), self._nsets[i],
                                  self._strategy)
            miss_sorted, nmiss = lvl.access_grouped(lines[order], bp)
            lvl.stats.accesses += window.size
            lvl.stats.misses += nmiss
            if last:
                return None
            # Demand stream back in program order: scatter the
            # sorted-space miss positions through the permutation.
            sel = np.zeros(window.size, dtype=bool)
            sel[order[miss_sorted]] = True
            return window[sel]
        miss = lvl.access(window)   # 2-way levels keep their own path
        return None if last else window[miss]
