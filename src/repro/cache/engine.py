"""Batched single-pass hierarchy engine.

:meth:`CacheHierarchy.run <repro.cache.hierarchy.CacheHierarchy.run>`
drives this engine whenever no miss classifiers are attached (3C
classification needs per-access masks the batched form never builds).
It produces **bit-for-bit** the same :class:`HierarchyStats` as the
per-chunk ``access()`` loop — the differential tests in
``tests/test_cache_engine.py`` hold it to that — by exploiting a
property both paths share: direct-mapped/LRU simulation with carried
state is *split-invariant*, so the stream may be re-batched freely
without changing a single miss.

**Windowed batching.** Every level consumes its input stream in
windows of about :data:`BATCH_TARGET` addresses. Chunks smaller than a
window (tiled schedules emit dozens of tiny per-tile chunks) are
buffered and concatenated so the fixed per-call numpy cost is paid
once per window; chunks larger than a window are *split*, because the
counting partition's scatter is 4-6x faster when its working set stays
cache-resident — a whole-trace sort would stream multi-MB temporaries
through memory for no algorithmic gain.

**Per-level demand buffering.** A level's demand stream (the misses it
forwards) is buffered the same way, so L2 is also simulated in
full-size windows instead of one small call per L1 window. Levels are
decoupled by their carried state: only the order of each level's own
input matters, and buffering preserves it.

**One partition serving two levels.** When the hierarchy is exactly
two direct-mapped levels with equal line size and ``S1 <= S2`` sets,
L1's set index is the low bits of L2's: ``set1 = set2 & (S1 - 1)``.
The engine then partitions each window once by L1 set, simulates L1,
and extracts L2's demand *in sorted space* (``l_sorted[miss]``) —
grouped by ``set1``, program-ordered within each group. Because every
L2 set's accesses fall inside a single ``set1`` group, a stable
partition of that demand by ``set2`` still yields per-L2-set program
order, so L2 is simulated exactly without ever rebuilding the demand
stream's global program order. (Concatenating such per-window demand
segments preserves the property: within a window per-set2 order is
program order, and windows arrive in program order.) For any other
geometry (the paper's 32B-L1/64B-L2 default included) the engine falls
back to one partition per level, which is still strictly cheaper than
the legacy path thanks to windowing and the counting partition
(:mod:`repro.cache.partition`).

The engine is created per ``run()`` and owns no cache state — tags and
statistics live in the level simulators exactly as before, so carried
state still flows across ``run()`` calls and mixed ``run()``/
``access()`` usage.
"""

from __future__ import annotations

import numpy as np

from repro.cache.assoc_scan import AssocScanCache
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.partition import partition
from repro.obs import metrics

__all__ = ["HierarchyEngine", "BATCH_TARGET", "shared_partition_applies"]

#: Target addresses per simulated window (128 KB of int64): large
#: enough to amortize numpy call overhead, small enough that the
#: partition scatter and segment scans stay cache-resident.
BATCH_TARGET = 1 << 14

#: Window size for associative-scan levels: the LRU scan replays each
#: occupied set's carried stack as ghost accesses every window, so its
#: fixed cost (up to ``num_sets * assoc`` ghosts) wants more
#: amortization than the direct-mapped scatter does.
ASSOC_BATCH_TARGET = 1 << 16


def shared_partition_applies(levels, params) -> bool:
    """Whether one L1 partition can serve both levels (see module doc).

    Exactly two direct-mapped levels with equal line size and
    ``S1 <= S2`` sets: L1's set index is then the low bits of L2's, so
    a stable partition of L2's demand by ``set2`` can be extracted in
    L1's sorted space. Shared between the engine and
    :meth:`CacheHierarchy.engine_support
    <repro.cache.hierarchy.CacheHierarchy.engine_support>` so the
    reported mode always matches what the engine will do.
    """
    levels = list(levels)
    params = list(params)
    return (len(levels) == 2
            and isinstance(levels[0], DirectMappedCache)
            and isinstance(levels[1], DirectMappedCache)
            and params[0].line_bytes == params[1].line_bytes
            and params[0].num_sets <= params[1].num_sets)


class HierarchyEngine:
    """Buffers cacheable addresses and simulates them level by level.

    Parameters
    ----------
    levels:
        The hierarchy's live level simulators (state + stats holders).
    params:
        Matching :class:`~repro.cache.params.CacheParams` per level.
    strategy:
        Partition strategy override forwarded to
        :func:`repro.cache.partition.partition` (tests force
        ``"argsort"`` to diff the two paths); ``None`` = automatic.
    """

    def __init__(self, levels, params, strategy: str | None = None):
        self._levels = list(levels)
        self._params = list(params)
        self._strategy = strategy
        self._shifts = [int(p.line_bytes).bit_length() - 1 for p in params]
        self._nsets = [p.num_sets for p in params]
        self._nlev = len(self._levels)
        self._bufs: list[list[np.ndarray]] = [[] for _ in levels]
        self._pending = [0] * self._nlev
        self._wins = [ASSOC_BATCH_TARGET
                      if isinstance(lvl, AssocScanCache) else BATCH_TARGET
                      for lvl in self._levels]
        self._shared = shared_partition_applies(self._levels, self._params)

    @property
    def mode(self) -> str:
        """``"shared"`` (one partition feeds both levels) or ``"per_level"``."""
        return "shared" if self._shared else "per_level"

    # ------------------------------------------------------------------
    def feed(self, byte_addrs: np.ndarray) -> None:
        """Buffer one cacheable (already write-filtered) address array."""
        self._feed_level(0, byte_addrs)

    def flush(self) -> None:
        """Simulate everything buffered so far (idempotent when empty)."""
        for i in range(self._nlev):
            # Flushing level i feeds level i+1's buffer, which the next
            # iteration drains — nearest level first, by construction.
            self._flush_level(i)

    # ------------------------------------------------------------------
    def _feed_level(self, i: int, stream: np.ndarray) -> None:
        if stream.size == 0:
            return
        self._bufs[i].append(stream)
        self._pending[i] += stream.size
        if self._pending[i] >= self._wins[i]:
            self._flush_level(i)

    def _flush_level(self, i: int) -> None:
        buf = self._bufs[i]
        if not buf:
            return
        batch = buf[0] if len(buf) == 1 else np.concatenate(buf)
        buf.clear()
        self._pending[i] = 0
        forward = i + 1 < self._nlev
        win = self._wins[i]
        for s in range(0, batch.size, win):
            demand = self._process(i, batch[s:s + win])
            if forward and demand is not None:
                self._feed_level(i + 1, demand)

    def _process(self, i: int, window: np.ndarray) -> np.ndarray | None:
        """Simulate one window at level ``i``; return its demand stream.

        In shared mode the demand (and level 1's input) are *line ids*
        in sorted-space order; in per-level mode everything stays byte
        addresses in program order.
        """
        lvl = self._levels[i]
        last = i + 1 == self._nlev
        if i == 0:
            metrics.inc("repro.cache.batches")
        if self._shared:
            lines = window if i else window >> self._shifts[0]
            order, bp = partition(lvl.set_index(lines), self._nsets[i],
                                  self._strategy)
            l_sorted = lines[order]
            miss_sorted, nmiss = lvl.access_grouped(l_sorted, bp)
            lvl.stats.accesses += window.size
            lvl.stats.misses += nmiss
            if last:
                return None
            metrics.inc("repro.cache.shared_sort_hits")
            return l_sorted[miss_sorted]
        if isinstance(lvl, (DirectMappedCache, AssocScanCache)):
            # Both expose the same caller-owns-stats partitioned
            # contract: set_index() + access_grouped(l_sorted, bp).
            lines = window >> self._shifts[i]
            order, bp = partition(lvl.set_index(lines), self._nsets[i],
                                  self._strategy)
            miss_sorted, nmiss = lvl.access_grouped(lines[order], bp)
            lvl.stats.accesses += window.size
            lvl.stats.misses += nmiss
            if last:
                return None
            # Demand stream back in program order: scatter the
            # sorted-space miss positions through the permutation.
            sel = np.zeros(window.size, dtype=bool)
            sel[order[miss_sorted]] = True
            return window[sel]
        miss = lvl.access(window)   # 2-way levels keep their own path
        return None if last else window[miss]
