"""Miss classification: cold vs. conflict vs. capacity (the "3 Cs").

The paper's central argument is *which kind* of miss tiling and padding
remove (Sections 2-3): conflict misses inside the array tile are what
Euc3D/GcdPad/Pad defeat, capacity misses are what tiling itself
addresses, and cold misses are the floor no transformation touches.
The aggregate hit/miss counters of :class:`~repro.cache.base.CacheStats`
cannot make that distinction; this module can, using the standard
shadow-simulation definition:

* **cold** — first-ever access to the line (would miss at any size and
  associativity);
* **capacity** — a non-cold miss that *also* misses in a fully
  associative LRU cache of the same capacity (the working set plainly
  does not fit);
* **conflict** — a non-cold miss that *hits* in the fully associative
  shadow: only the mapping, not the capacity, is at fault — exactly
  the misses :mod:`repro.core.conflict` predicts and the padding
  strategies remove.

By construction ``cold + conflict + capacity`` equals the simulated
level's ``CacheStats.misses`` over the same access stream; tests and
the metrics contract rely on that identity.

The shadow simulation is a per-access Python loop (fully associative
LRU does not vectorize the way direct-mapped simulation does), so
classification is opt-in — the experiment runner attaches classifiers
only when metrics collection is enabled (``--metrics``).

Attaching a classifier has a second cost beyond the Python loop: it
forces :meth:`CacheHierarchy.run
<repro.cache.hierarchy.CacheHierarchy.run>` onto the legacy per-chunk
path (``repro.cache.engine_runs{mode=legacy}``) because the batched
:class:`~repro.cache.engine.HierarchyEngine` reorders accesses within
a window and classifiers must observe them in program order. It is
likewise incompatible with K-plane extrapolation
(:mod:`repro.experiments.extrapolate`) — skipped planes are never
simulated, so their misses cannot be classified; the runner gives
``--metrics`` precedence and disables extrapolation for such points.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.params import CacheParams

__all__ = ["MISS_CLASSES", "MissClassifier"]

MISS_CLASSES = ("cold", "conflict", "capacity")


class MissClassifier:
    """Classifies one cache level's misses via a shadow LRU simulation.

    Feed it exactly the access stream the level saw (the hierarchy does
    this when classifiers are attached): :meth:`classify` takes the
    chunk of byte addresses and the level's miss mask for that chunk.

    Optionally attributes misses to arrays by address range
    (``arrays`` is a list of ``(name, lo_byte, hi_byte)`` with
    half-open, non-overlapping, sorted ranges).
    """

    def __init__(self, params: CacheParams,
                 arrays: list[tuple[str, int, int]] | None = None):
        self.params = params
        self._line_shift = int(params.line_bytes).bit_length() - 1
        self._capacity = params.num_lines
        self._shadow: OrderedDict[int, None] = OrderedDict()
        self._seen: set[int] = set()
        self.counts: dict[str, int] = {c: 0 for c in MISS_CLASSES}
        self._array_names: list[str] = []
        self._array_bounds: np.ndarray | None = None
        if arrays:
            arrays = sorted(arrays, key=lambda a: a[1])
            self._array_names = [a[0] for a in arrays]
            # Flat boundary list [lo0, hi0, lo1, hi1, ...]; searchsorted
            # puts an address at an odd index iff it falls in a range.
            self._array_bounds = np.asarray(
                [b for a in arrays for b in (a[1], a[2])], dtype=np.int64)
        self.by_array: dict[str, int] = {n: 0 for n in self._array_names}

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Misses classified so far (== the level's misses)."""
        return sum(self.counts.values())

    def classify(self, byte_addrs: np.ndarray, miss_mask: np.ndarray) -> None:
        """Account one chunk: the level's input stream and miss mask."""
        byte_addrs = np.asarray(byte_addrs, dtype=np.int64)
        if byte_addrs.size == 0:
            return
        lines = (byte_addrs >> self._line_shift).tolist()
        missed = np.asarray(miss_mask, dtype=bool).tolist()

        shadow = self._shadow
        seen = self._seen
        capacity = self._capacity
        counts = self.counts
        for line, miss in zip(lines, missed):
            in_shadow = line in shadow
            if in_shadow:
                shadow.move_to_end(line)
            else:
                shadow[line] = None
                if len(shadow) > capacity:
                    shadow.popitem(last=False)
            if miss:
                if line not in seen:
                    counts["cold"] += 1
                elif in_shadow:
                    counts["conflict"] += 1
                else:
                    counts["capacity"] += 1
            seen.add(line)

        if self._array_bounds is not None:
            self._attribute(byte_addrs[np.asarray(miss_mask, dtype=bool)])

    def _attribute(self, miss_addrs: np.ndarray) -> None:
        """Bucket miss addresses into registered array ranges."""
        if miss_addrs.size == 0:
            return
        slots = np.searchsorted(self._array_bounds, miss_addrs, side="right")
        inside = (slots % 2) == 1
        for slot, n in zip(*np.unique(slots[inside], return_counts=True)):
            self.by_array[self._array_names[int(slot) // 2]] += int(n)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mirror a cache invalidation: forget shadow *contents* only.

        ``seen`` lines and accumulated counts survive — a re-fetch after
        an invalidation is not a cold miss.
        """
        self._shadow.clear()

    def reset(self) -> None:
        """Forget everything, including counts (a fresh classifier)."""
        self._shadow.clear()
        self._seen.clear()
        self.counts = {c: 0 for c in MISS_CLASSES}
        self.by_array = {n: 0 for n in self._array_names}
