"""Stable set-index partitioning: the sort under every cache simulator.

Every vectorized simulator in this package reduces to the same
primitive: group a chunk's accesses by set index while preserving
program order inside each group. The original implementation used
``np.argsort(kind="stable")`` — an O(n log n) comparison/radix sort —
even though the key space is tiny (512 sets for the paper's L1, 32768
for its L2). A *counting sort* does the same job in O(n + num_sets):
count keys, prefix-sum the counts into group boundaries, scatter each
element's position into its group. As a bonus the boundaries come out
for free, replacing the sorted-key adjacent-compare + ``flatnonzero``
segment discovery the simulators used to pay for.

numpy has no vectorized *stable* counting-sort scatter (the per-key
running offset is an inherently sequential scan), but scipy ships one:
``coo_tocsr`` — COO→CSR conversion *is* exactly "counting-sort rows,
carrying column/data along". Feeding it the set indices as rows and
positions as data yields the stable permutation and the CSR ``indptr``
is the group-boundary prefix sum. :func:`partition` uses it when scipy
is importable and falls back to the original stable argsort (plus one
``bincount`` for the boundaries) otherwise — both strategies return
**bit-for-bit identical** results (the differential tests in
``tests/test_cache_engine.py`` prove it), so the choice is purely a
speed knob.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics

try:  # scipy is optional; the argsort fallback is always available.
    from scipy.sparse import _sparsetools as _sparsetools
    _HAVE_COUNTING = hasattr(_sparsetools, "coo_tocsr")
except Exception:  # pragma: no cover - import-environment dependent
    _sparsetools = None
    _HAVE_COUNTING = False

__all__ = ["partition", "default_strategy", "counting_available",
           "PARTITION_STRATEGIES"]

#: Valid ``strategy`` values for :func:`partition`.
PARTITION_STRATEGIES = ("counting", "argsort")

#: scipy's sparsetools are compiled for 32-bit indices first; stay well
#: inside them (chunked traces are ~2^20 addresses anyway).
_COUNTING_MAX = (1 << 31) - 1


def counting_available() -> bool:
    """Whether the scipy counting-sort kernel can be used."""
    return _HAVE_COUNTING


def default_strategy() -> str:
    """The strategy :func:`partition` picks when none is forced."""
    return "counting" if _HAVE_COUNTING else "argsort"


def _narrow_for_argsort(keys: np.ndarray, num_keys: int) -> np.ndarray:
    """Narrowest dtype holding ``[0, num_keys)`` — numpy's radix path.

    ``num_keys == 2**15`` still fits int16 (max key 32767).
    """
    if num_keys <= (1 << 15):
        dtype = np.int16
    elif num_keys <= (1 << 31):
        dtype = np.int32
    else:  # pragma: no cover - absurd geometry
        dtype = np.int64
    return keys if keys.dtype == dtype else keys.astype(dtype)


def partition(keys: np.ndarray, num_keys: int,
              strategy: str | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Stable partition of ``keys`` (integers in ``[0, num_keys)``).

    Returns ``(order, bp)``:

    * ``order`` — the stable sorting permutation, identical to
      ``np.argsort(keys, kind="stable")``, as ``np.intp`` (the fastest
      fancy-index dtype);
    * ``bp`` — int64 group boundaries, ``len == num_keys + 1`` with
      ``bp[0] == 0`` and ``bp[-1] == len(keys)``: group ``k`` occupies
      ``order[bp[k]:bp[k + 1]]``. Empty groups are empty slices.

    ``strategy`` forces ``"counting"`` (scipy ``coo_tocsr``) or
    ``"argsort"`` (the pre-engine stable sort); ``None`` picks
    :func:`default_strategy`. A forced ``"counting"`` quietly falls
    back to ``"argsort"`` when scipy is unavailable or the input
    exceeds 32-bit indexing — results are identical either way.
    """
    if strategy is None:
        strategy = default_strategy()
    elif strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"valid: {PARTITION_STRATEGIES}")
    n = keys.size
    if strategy == "counting" and (
            not _HAVE_COUNTING or n > _COUNTING_MAX
            or num_keys > _COUNTING_MAX):
        strategy = "argsort"

    if n == 0:
        return (np.empty(0, dtype=np.intp),
                np.zeros(num_keys + 1, dtype=np.int64))

    if strategy == "counting":
        k32 = keys if keys.dtype == np.int32 else keys.astype(np.int32)
        pos = np.arange(n, dtype=np.int32)
        bp32 = np.zeros(num_keys + 1, dtype=np.int32)
        order32 = np.empty(n, dtype=np.int32)
        scratch = np.empty(n, dtype=np.int32)
        # COO->CSR with rows = keys, data = positions: the CSR column/
        # data arrays come out as the stable permutation and indptr as
        # the boundary prefix sum. ``pos`` is passed as both Aj and Ax
        # (read-only inputs may alias); only one output is kept.
        _sparsetools.coo_tocsr(num_keys, n, n, k32, pos, pos,
                               bp32, order32, scratch)
        metrics.inc("repro.cache.partition", strategy="counting")
        return order32.astype(np.intp), bp32.astype(np.int64)

    narrow = _narrow_for_argsort(keys, num_keys)
    order = np.argsort(narrow, kind="stable")
    counts = np.bincount(narrow, minlength=num_keys)
    bp = np.empty(num_keys + 1, dtype=np.int64)
    bp[0] = 0
    np.cumsum(counts, out=bp[1:])
    metrics.inc("repro.cache.partition", strategy="argsort")
    return order, bp
