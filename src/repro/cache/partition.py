"""Stable set-index partitioning: the sort under every cache simulator.

Every vectorized simulator in this package reduces to the same
primitive: group a chunk's accesses by set index while preserving
program order inside each group. The original implementation used
``np.argsort(kind="stable")`` — an O(n log n) comparison/radix sort —
even though the key space is tiny (512 sets for the paper's L1, 32768
for its L2). A *counting sort* does the same job in O(n + num_sets):
count keys, prefix-sum the counts into group boundaries, scatter each
element's position into its group. As a bonus the boundaries come out
for free, replacing the sorted-key adjacent-compare + ``flatnonzero``
segment discovery the simulators used to pay for.

numpy has no vectorized *stable* counting-sort scatter (the per-key
running offset is an inherently sequential scan), but scipy ships one:
``coo_tocsr`` — COO→CSR conversion *is* exactly "counting-sort rows,
carrying column/data along". Feeding it the set indices as rows and
positions as data yields the stable permutation and the CSR ``indptr``
is the group-boundary prefix sum. :func:`partition` uses it when scipy
is importable and falls back to the original stable argsort (plus one
``bincount`` for the boundaries) otherwise — both strategies return
**bit-for-bit identical** results (the differential tests in
``tests/test_cache_engine.py`` prove it), so the choice is purely a
speed knob.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics

try:  # scipy is optional; the argsort fallback is always available.
    from scipy.sparse import _sparsetools as _sparsetools
    _HAVE_COUNTING = hasattr(_sparsetools, "coo_tocsr")
except Exception:  # pragma: no cover - import-environment dependent
    _sparsetools = None
    _HAVE_COUNTING = False

__all__ = ["partition", "default_strategy", "counting_available",
           "PARTITION_STRATEGIES", "run_line_intervals"]

#: Valid ``strategy`` values for :func:`partition`.
PARTITION_STRATEGIES = ("counting", "argsort")

#: scipy's sparsetools are compiled for 32-bit indices first; stay well
#: inside them (chunked traces are ~2^20 addresses anyway).
_COUNTING_MAX = (1 << 31) - 1


def counting_available() -> bool:
    """Whether the scipy counting-sort kernel can be used."""
    return _HAVE_COUNTING


def default_strategy() -> str:
    """The strategy :func:`partition` picks when none is forced."""
    return "counting" if _HAVE_COUNTING else "argsort"


def _narrow_for_argsort(keys: np.ndarray, num_keys: int) -> np.ndarray:
    """Narrowest dtype holding ``[0, num_keys)`` — numpy's radix path.

    ``num_keys == 2**15`` still fits int16 (max key 32767).
    """
    if num_keys <= (1 << 15):
        dtype = np.int16
    elif num_keys <= (1 << 31):
        dtype = np.int32
    else:  # pragma: no cover - absurd geometry
        dtype = np.int64
    return keys if keys.dtype == dtype else keys.astype(dtype)


def partition(keys: np.ndarray, num_keys: int,
              strategy: str | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Stable partition of ``keys`` (integers in ``[0, num_keys)``).

    Returns ``(order, bp)``:

    * ``order`` — the stable sorting permutation, identical to
      ``np.argsort(keys, kind="stable")``, as ``np.intp`` (the fastest
      fancy-index dtype);
    * ``bp`` — int64 group boundaries, ``len == num_keys + 1`` with
      ``bp[0] == 0`` and ``bp[-1] == len(keys)``: group ``k`` occupies
      ``order[bp[k]:bp[k + 1]]``. Empty groups are empty slices.

    ``strategy`` forces ``"counting"`` (scipy ``coo_tocsr``) or
    ``"argsort"`` (the pre-engine stable sort); ``None`` picks
    :func:`default_strategy`. A forced ``"counting"`` quietly falls
    back to ``"argsort"`` when scipy is unavailable or the input
    exceeds 32-bit indexing — results are identical either way.
    """
    if strategy is None:
        strategy = default_strategy()
    elif strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"valid: {PARTITION_STRATEGIES}")
    n = keys.size
    if strategy == "counting" and (
            not _HAVE_COUNTING or n > _COUNTING_MAX
            or num_keys > _COUNTING_MAX):
        strategy = "argsort"

    if n == 0:
        return (np.empty(0, dtype=np.intp),
                np.zeros(num_keys + 1, dtype=np.int64))

    if strategy == "counting":
        k32 = keys if keys.dtype == np.int32 else keys.astype(np.int32)
        pos = np.arange(n, dtype=np.int32)
        bp32 = np.zeros(num_keys + 1, dtype=np.int32)
        order32 = np.empty(n, dtype=np.int32)
        scratch = np.empty(n, dtype=np.int32)
        # COO->CSR with rows = keys, data = positions: the CSR column/
        # data arrays come out as the stable permutation and indptr as
        # the boundary prefix sum. ``pos`` is passed as both Aj and Ax
        # (read-only inputs may alias); only one output is kept.
        _sparsetools.coo_tocsr(num_keys, n, n, k32, pos, pos,
                               bp32, order32, scratch)
        metrics.inc("repro.cache.partition", strategy="counting")
        return order32.astype(np.intp), bp32.astype(np.int64)

    narrow = _narrow_for_argsort(keys, num_keys)
    order = np.argsort(narrow, kind="stable")
    counts = np.bincount(narrow, minlength=num_keys)
    bp = np.empty(num_keys + 1, dtype=np.int64)
    bp[0] = 0
    np.cumsum(counts, out=bp[1:])
    metrics.inc("repro.cache.partition", strategy="argsort")
    return order, bp


# ----------------------------------------------------------------------
# closed-form decomposition of affine runs (no address expansion)
# ----------------------------------------------------------------------

def run_line_intervals(bases: np.ndarray, strides: np.ndarray,
                       counts: np.ndarray, line_shift: int
                       ) -> tuple[np.ndarray, ...]:
    """Per-cache-line intervals of affine runs, in closed form.

    Run ``(g, c)`` touches ``bases[g, c] + t * strides[g]`` for
    ``t = 0 .. counts[g] - 1``. With a positive stride no larger than
    the line size (``1 << line_shift``), the run's line ids are the
    consecutive integers ``bases[g,c] >> line_shift`` through
    ``last >> line_shift``, and the iterations touching line ``L``
    form the contiguous interval ``ceil((L << line_shift - base) /
    stride) <= t < ceil(((L+1) << line_shift - base) / stride)`` —
    all computed with integer vector arithmetic, never expanding an
    address. (Set indices are the low bits of the line ids, so the
    same decomposition *is* the per-set sub-run decomposition; their
    periodicity in ``t`` is what makes the closed form possible.)

    Returns ``(run, q, line, p, pe)``, one row per interval in
    ``(run, line)`` order, where ``run = g * n_refs + c`` indexes the
    flattened runs (int32), ``q`` is the interval's ordinal within its
    run (int32), ``line`` the absolute line id (int64), and

    * ``p``  — the interleaved-stream position of the interval's first
      access (``segment_offset + t_first * n_refs + c``), unique per
      interval (int32 — the caller bounds windows below 2**31
      positions);
    * ``pe`` — the position of its *last* access. Because a run's
      intervals tile its iterations, ``pe`` is the next interval's
      ``p`` minus ``n_refs`` (run-final intervals use the segment
      count) — no second division.

    For power-of-two strides (the overwhelmingly common case: unit or
    constant element-count steps of power-of-two element sizes) the
    interval start times are *affine in q*: with ``s = 2**sh`` and
    ``A = (lo << line_shift) - base + s - 1``, interval ``q >= 1``
    starts at ``t = (A >> sh) + (q << (line_shift - sh))`` exactly,
    because ``q << line_shift`` is a multiple of ``2**sh`` and floors
    distribute over it. That removes every per-interval division (and
    the per-interval shift): ``p`` is one multiply-add off two tiny
    per-run tables, with the ``q == 0`` entries (which start at
    ``t = 0`` by definition) patched by a per-run scatter.

    A zero stride is only valid for ``counts[g] == 1`` runs (a single
    interval). The caller gates eligibility (``0 < stride <=
    line_bytes``, or ``stride == 0`` with a single iteration); this
    function assumes it.
    """
    nseg, nrefs = bases.shape
    lo2 = bases >> line_shift
    hi2 = (bases + (counts[:, None] - 1) * strides[:, None]) >> line_shift
    m = (hi2 - lo2 + 1).reshape(-1)          # intervals per run
    total = int(m.sum())
    nruns = nseg * nrefs
    run = np.repeat(np.arange(nruns, dtype=np.int32), m)
    cum = np.zeros(nruns + 1, dtype=np.int32)
    np.cumsum(m, out=cum[1:])
    # Everything per-run lives on the (tiny) run axis; the per-interval
    # arrays are built from it with int32 gathers and arithmetic.
    rr = np.arange(nruns)
    g_run = rr // nrefs
    s_run = np.maximum(strides, 1)[g_run]    # stride 0 => single interval
    q = np.arange(total, dtype=np.int32)
    q -= cum[run]
    line = lo2.reshape(-1)[run]
    line += q
    off = np.zeros(nseg + 1, dtype=np.int64)
    np.cumsum(counts * nrefs, out=off[1:])
    pc_run = (off[g_run] + rr - g_run * nrefs).astype(np.int32)
    if bool(np.all(s_run & (s_run - 1) == 0)):
        sh_run = np.round(np.log2(s_run)).astype(np.int64)
        a_run = ((lo2.reshape(-1) << line_shift) - bases.reshape(-1)
                 + s_run - 1)
        t0_run = a_run >> sh_run
        step_run = (nrefs << (line_shift - sh_run)).astype(np.int32)
        p0_run = (t0_run * nrefs + pc_run).astype(np.int32)
        p = q * step_run[run]
        p += p0_run[run]
    else:  # rare: one true ceil-division pass
        x = line << line_shift
        x -= bases.reshape(-1)[run]
        sv = s_run[run]
        t = (x + sv - 1) // sv
        np.maximum(t, 0, out=t)
        p = (t * nrefs + pc_run[run].astype(np.int64)).astype(np.int32)
    p[cum[:-1]] = pc_run                      # q == 0 starts at t = 0
    pe = np.empty_like(p)
    pe[:total - 1] = p[1:] - np.int32(nrefs)
    pe[cum[1:] - 1] = pc_run + ((counts[g_run] - 1) * nrefs).astype(np.int32)
    return run, q, line, p, pe
