"""Padding application and memory accounting.

The tile-selection heuristics in :mod:`repro.core` *decide* pad amounts;
this module *applies* them to :class:`~repro.layout.array.ArraySpec`
objects and accounts for the memory they cost (Figure 22 of the paper).

Two forms of padding appear in the paper:

* **intra-array padding** — growing the lower declared dimensions
  ``DI -> DI_p``, ``DJ -> DJ_p`` so non-conflicting tiles exist
  (Sections 3.4.1-3.4.2);
* **inter-variable padding** — offsetting the base addresses of distinct
  arrays so each maps to its own portion of the cache (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.layout.array import ArraySpec

__all__ = ["apply_pad", "memory_overhead", "inter_variable_pads", "MemoryReport"]


def apply_pad(spec: ArraySpec, di_p: int, dj_p: int) -> ArraySpec:
    """Return ``spec`` re-declared with padded lower dimensions.

    The used extent is unchanged; only the declared dimensions (and hence
    the address strides) grow. Raises :class:`LayoutError` if the pad
    would shrink a dimension.
    """
    if di_p < spec.di or dj_p < spec.dj:
        raise LayoutError(
            f"pad must not shrink dims: {spec.di}x{spec.dj} -> {di_p}x{dj_p}"
        )
    return spec.with_dims(di=di_p, dj=dj_p)


@dataclass(frozen=True, slots=True)
class MemoryReport:
    """Memory accounting for a padding decision on one array."""

    base_elements: int
    padded_elements: int

    @property
    def extra_elements(self) -> int:
        return self.padded_elements - self.base_elements

    @property
    def overhead(self) -> float:
        """Fractional increase, e.g. 0.147 for +14.7%."""
        return self.extra_elements / self.base_elements

    @property
    def percent(self) -> float:
        return 100.0 * self.overhead


def memory_overhead(di: int, dj: int, dk: int, di_p: int, dj_p: int,
                    dk_p: int | None = None) -> MemoryReport:
    """Memory increase of padding a ``DI x DJ x DK`` array.

    ``dk_p`` defaults to ``dk`` (the paper never pads the outermost
    dimension — padding it cannot affect intra-tile conflicts).
    """
    if dk_p is None:
        dk_p = dk
    if di_p < di or dj_p < dj or dk_p < dk:
        raise LayoutError("padded dims must not shrink")
    return MemoryReport(base_elements=di * dj * dk,
                        padded_elements=di_p * dj_p * dk_p)


def inter_variable_pads(specs: list[ArraySpec], cache_elems: int,
                        partitions: list[int] | None = None) -> list[ArraySpec]:
    """Offset array bases so each maps to its own cache region (Sec 3.5).

    Given ``n`` arrays and a cache of ``cache_elems`` elements, assign
    array ``a`` the cache offset ``sum(partitions[:a])`` by padding its
    base address so ``base mod cache_elems`` equals that offset.  With
    ``partitions=None`` the cache is split evenly.

    Returns new specs in the same order, with strictly increasing,
    non-overlapping address ranges.
    """
    n = len(specs)
    if n == 0:
        return []
    if partitions is None:
        share = cache_elems // n
        partitions = [share] * n
    if len(partitions) != n:
        raise LayoutError("need one partition size per array")
    if sum(partitions) > cache_elems:
        raise LayoutError("partitions exceed cache size")

    out: list[ArraySpec] = []
    cursor = specs[0].base
    offset = 0
    for spec, part in zip(specs, partitions):
        # Advance cursor to the next address congruent to `offset` mod cache.
        rem = (offset - cursor) % cache_elems
        base = cursor + rem
        padded = spec.with_dims(base=base)
        out.append(padded)
        cursor = padded.end
        offset = (offset + part) % cache_elems
    return out
