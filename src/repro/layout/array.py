"""Column-major array specifications.

An :class:`ArraySpec` describes a (up to) 3D Fortran array as laid out in
memory: declared dimensions ``(di, dj, dk)``, a base element address, and
an element size in bytes.  It converts subscripts to linear element
addresses both for scalars and for whole numpy index arrays (the hot path
for trace generation), so no Python-level per-element loop ever touches
address math.

Subscripts are **0-based** here; the paper's Fortran codes are 1-based,
and the translation happens in the kernel/trace layer where loop bounds
are defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError

__all__ = ["ArraySpec"]


@dataclass(frozen=True, slots=True)
class ArraySpec:
    """Layout of a column-major ``di x dj x dk`` array.

    Parameters
    ----------
    name:
        Identifier used in traces and reports (e.g. ``"B"``).
    di, dj, dk:
        Declared dimension sizes in elements. ``dk`` may exceed the used
        extent (the paper's ``M`` planes); only addressing depends on it.
    base:
        Base address of element (0, 0, 0), in **elements** (not bytes).
        Distinct arrays in a kernel get disjoint address ranges.
    elem_bytes:
        Size of one element in bytes (8 for float64). Only used when
        converting to byte addresses for cache-line math.
    """

    name: str
    di: int
    dj: int
    dk: int = 1
    base: int = 0
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.di < 1 or self.dj < 1 or self.dk < 1:
            raise LayoutError(f"array dims must be positive: {self}")
        if self.base < 0:
            raise LayoutError(f"base address must be non-negative: {self}")
        if self.elem_bytes < 1:
            raise LayoutError(f"element size must be positive: {self}")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def plane(self) -> int:
        """Elements per (i, j) plane: the K-stride."""
        return self.di * self.dj

    @property
    def size(self) -> int:
        """Total declared elements."""
        return self.di * self.dj * self.dk

    @property
    def end(self) -> int:
        """One past the last element address (elements)."""
        return self.base + self.size

    def with_dims(self, di: int | None = None, dj: int | None = None,
                  dk: int | None = None, base: int | None = None) -> "ArraySpec":
        """Return a copy with some dimensions replaced (used for padding)."""
        return ArraySpec(
            name=self.name,
            di=self.di if di is None else di,
            dj=self.dj if dj is None else dj,
            dk=self.dk if dk is None else dk,
            base=self.base if base is None else base,
            elem_bytes=self.elem_bytes,
        )

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def addr(self, i: int, j: int, k: int = 0) -> int:
        """Element address of 0-based subscript (i, j, k)."""
        if not (0 <= i < self.di and 0 <= j < self.dj and 0 <= k < self.dk):
            raise LayoutError(
                f"subscript ({i}, {j}, {k}) out of bounds for {self.name}"
                f" [{self.di} x {self.dj} x {self.dk}]"
            )
        return self.base + i + j * self.di + k * self.plane

    def addr_array(self, i: np.ndarray, j: np.ndarray, k: np.ndarray | int = 0,
                   check: bool = False) -> np.ndarray:
        """Vectorized element addresses for arrays of subscripts.

        ``i``, ``j``, ``k`` broadcast together. With ``check=True`` the
        subscripts are bounds-checked (slow path, used by tests).
        """
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        if check:
            if (i.size and (i.min() < 0 or i.max() >= self.di)) or \
               (j.size and (j.min() < 0 or j.max() >= self.dj)) or \
               (k.size and (k.min() < 0 or k.max() >= self.dk)):
                raise LayoutError(f"subscripts out of bounds for {self.name}")
        return self.base + i + j * np.int64(self.di) + k * np.int64(self.plane)

    def byte_addr(self, i: int, j: int, k: int = 0) -> int:
        """Byte address of a subscript (for cache-line computations)."""
        return self.addr(i, j, k) * self.elem_bytes

    def unaddr(self, addr: int) -> tuple[int, int, int]:
        """Inverse of :meth:`addr`: element address back to (i, j, k)."""
        off = addr - self.base
        if not (0 <= off < self.size):
            raise LayoutError(f"address {addr} not within {self.name}")
        k, rem = divmod(off, self.plane)
        j, i = divmod(rem, self.di)
        return (int(i), int(j), int(k))

    def overlaps(self, other: "ArraySpec") -> bool:
        """Whether two arrays' address ranges intersect."""
        return self.base < other.end and other.base < self.end


def allocate(specs: list[tuple[str, int, int, int]], elem_bytes: int = 8,
             gap: int = 0, base: int = 0) -> dict[str, ArraySpec]:
    """Lay out several arrays back-to-back in one address space.

    ``specs`` is a list of ``(name, di, dj, dk)``. ``gap`` inserts unused
    elements between consecutive arrays (inter-variable padding).
    Returns a dict name -> :class:`ArraySpec` with disjoint ranges.
    """
    out: dict[str, ArraySpec] = {}
    cursor = base
    for name, di, dj, dk in specs:
        if name in out:
            raise LayoutError(f"duplicate array name {name!r}")
        spec = ArraySpec(name=name, di=di, dj=dj, dk=dk, base=cursor,
                         elem_bytes=elem_bytes)
        out[name] = spec
        cursor = spec.end + gap
    return out
