"""Array layout substrate: column-major address math and padding.

The paper analyses Fortran arrays, so all address computations here are
column-major ("I" fastest). :class:`~repro.layout.array.ArraySpec` is the
single source of truth mapping (i, j, k) subscripts to linear element
addresses; padding is expressed by allocating an ArraySpec whose declared
dimensions exceed the used extent.
"""

from repro.layout.array import ArraySpec
from repro.layout.padding import (
    MemoryReport,
    apply_pad,
    inter_variable_pads,
    memory_overhead,
)

__all__ = [
    "ArraySpec",
    "MemoryReport",
    "apply_pad",
    "inter_variable_pads",
    "memory_overhead",
]
