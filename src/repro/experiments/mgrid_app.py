"""Section 4.6: application-level impact of tiling MGRID's RESID.

The paper tiles RESID with GcdPad for the largest grid only and reports
a 6% total-execution-time improvement at the 130^3 reference size,
noting the untiled kernel's L1 miss rate at that size is a modest 6.8%.

Model here:

1. the V-cycle operator structure (how many resid/psinv/rprj3/interp
   invocations per level per iteration) is *measured* by running the
   real solver on a small hierarchy;
2. RESID's misses are *simulated* per level — untiled everywhere for the
   baseline, GcdPad-tiled at the finest level for the optimized variant
   (matching the paper, padding applied by re-declaring the finest
   array);
3. the other operators' misses are estimated as streaming traffic
   (one miss per cache line of data touched) — identical in both
   variants, so they dilute but never bias the improvement;
4. total time comes from the machine model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.core.selector import select
from repro.experiments.config import ExperimentConfig
from repro.kernels import Schedule
from repro.kernels.resid import Resid
from repro.multigrid.hierarchy import GridHierarchy
from repro.multigrid.solver import MGSolver
from repro.perfmodel.model import RunCounts, predict

__all__ = ["MgridAppResult", "mgrid_app", "format_mgrid_app"]

#: Per-point costs (flops, refs) of each operator, from its stencil.
OP_COSTS = {
    "resid": (31.0, 29),
    "psinv": (30.0, 29),
    "rprj3": (34.0, 28),
    "interp": (7.0, 9),
}


@dataclass(frozen=True)
class MgridAppResult:
    finest_n: int
    baseline_seconds: float
    tiled_seconds: float
    resid_share: float          # fraction of baseline time in finest RESID
    finest_resid_l1_rate: float  # untiled, %
    improvement_pct: float
    tile: tuple[int, int]
    padded_dims: tuple[int, int]


def _op_structure(iterations: int) -> dict[int, dict[str, int]]:
    """Measure per-relative-level op counts by running a tiny real solve.

    Returns {depth_below_finest: {op: count}} for the given iteration
    count; the structure is size-independent (same V-cycle shape).
    """
    h = GridHierarchy(finest_level=4, coarsest_level=2)
    rng = np.random.default_rng(0)
    n = h.finest_size
    v = np.zeros((n, n, n))
    v[1:-1, 1:-1, 1:-1] = rng.standard_normal((n - 2,) * 3)
    solver = MGSolver(h)
    solver.solve(v, iterations=iterations)
    fin = h.finest_level
    return {fin - lvl: dict(ops) for lvl, ops in solver.ops.counts.items()}


def _resid_sim(n: int, strategy: str, cfg: ExperimentConfig
               ) -> tuple[int, int, int, tuple, tuple]:
    """Simulate one cubic RESID sweep; returns misses and geometry."""
    kern = Resid(n, n, elem_bytes=cfg.elem_bytes)
    sel = select(strategy, cfg.cs, n, n, mi=kern.meta.mi, mj=kern.meta.mj,
                 atd=kern.meta.atd)
    schedule = Schedule.TILED if sel.tiled else Schedule.UNTILED
    hier = CacheHierarchy(cfg.levels)
    for addrs, w in kern.trace(sel, schedule):
        hier.access(addrs, w)
    st = hier.stats()
    tile = sel.tile.as_tuple() if sel.tile else (0, 0)
    return (st.misses(0), st.misses(1), st.demand_refs,
            tile, (sel.di_p, sel.dj_p))


def _streaming_counts(points: int, flops_per: float, refs_per: int,
                      cfg: ExperimentConfig) -> RunCounts:
    """Streaming-op model: every line of touched data misses once."""
    refs = refs_per * points
    l1 = points // cfg.l1.line_elements(cfg.elem_bytes)
    l2 = points // cfg.l2.line_elements(cfg.elem_bytes)
    return RunCounts(iterations=points, flops=flops_per * points,
                     refs=refs, l1_misses=l1, l2_misses=l2)


def mgrid_app(finest_level: int = 7, coarsest_level: int = 2,
              iterations: int = 4,
              cfg: ExperimentConfig | None = None,
              tile_levels: str = "finest") -> MgridAppResult:
    """Model MGRID total time, baseline vs RESID-tiled.

    ``finest_level=7`` gives a 129^3 grid — the reference-class size the
    paper reports (130^3 in NAS's 2^k+2 convention).

    ``tile_levels`` selects the optimized variant: ``"finest"`` tiles
    only the largest grid's RESID (the paper's Section 4.6 experiment);
    ``"all"`` tiles RESID at every level, modeling the paper's "we
    expect additional improvements to arise from tiling the remaining
    subroutines" expectation. Euc3D's cheapness is what makes per-level
    selection plausible in the first place.
    """
    if tile_levels not in ("finest", "all"):
        raise ValueError(f"tile_levels must be 'finest' or 'all', "
                         f"got {tile_levels!r}")
    cfg = cfg or ExperimentConfig()
    h = GridHierarchy(finest_level=finest_level,
                      coarsest_level=coarsest_level)
    structure = _op_structure(iterations)

    total = {"base": 0.0, "tiled": 0.0}
    finest_resid_base = 0.0
    finest_resid_rate = 0.0
    tile = (0, 0)
    padded = (0, 0)

    for depth, ops in structure.items():
        level = finest_level - depth
        if level < coarsest_level:
            continue  # the tiny probe solve had a deeper hierarchy tail
        # NAS MGRID declares grids as (2^l + 2)^3 — the reference input is
        # 130^3, not 129^3 — so the cache simulation uses those dims.
        n = (1 << level) + 2
        points = max(1, (n - 2)) ** 3
        resid_sim = _resid_sim(n, "Orig", cfg)
        for op, count in ops.items():
            flops_per, refs_per = OP_COSTS[op]
            if op in ("resid", "psinv"):
                # psinv is the same 27-point traffic pattern as resid and
                # is never tiled in either variant.
                l1b, l2b, refs, _, _ = resid_sim
                base_counts = RunCounts(iterations=points,
                                        flops=flops_per * points,
                                        refs=refs, l1_misses=l1b,
                                        l2_misses=l2b)
                tile_here = (op == "resid"
                             and (depth == 0 or tile_levels == "all"))
                if tile_here:
                    l1t, l2t, refst, this_tile, this_pad = _resid_sim(
                        n, "GcdPad", cfg)
                    tiles = (math.ceil((n - 2) / this_tile[0])
                             * math.ceil((n - 2) / this_tile[1]))
                    tiled_counts = RunCounts(iterations=points,
                                             flops=flops_per * points,
                                             refs=refst, l1_misses=l1t,
                                             l2_misses=l2t, tiles=tiles)
                    if depth == 0:
                        tile, padded = this_tile, this_pad
                        finest_resid_rate = 100.0 * l1b / refs
                else:
                    tiled_counts = base_counts
            else:
                base_counts = _streaming_counts(points, flops_per,
                                                refs_per, cfg)
                tiled_counts = base_counts
            tb = predict(base_counts, cfg.machine).seconds * count
            tt = predict(tiled_counts, cfg.machine).seconds * count
            total["base"] += tb
            total["tiled"] += tt
            if op == "resid" and depth == 0:
                finest_resid_base += tb

    improvement = 100.0 * (total["base"] - total["tiled"]) / total["base"]
    return MgridAppResult(
        finest_n=(1 << finest_level) + 2,
        baseline_seconds=total["base"],
        tiled_seconds=total["tiled"],
        resid_share=finest_resid_base / total["base"],
        finest_resid_l1_rate=finest_resid_rate,
        improvement_pct=improvement,
        tile=tile,
        padded_dims=padded,
    )


def format_mgrid_app(r: MgridAppResult) -> str:
    return "\n".join([
        f"MGRID application study (finest grid {r.finest_n}^3):",
        f"  untiled finest RESID L1 miss rate : {r.finest_resid_l1_rate:.1f}%",
        f"  finest RESID share of total time  : {100 * r.resid_share:.1f}%",
        f"  GcdPad tile {r.tile}, padded dims {r.padded_dims}",
        f"  modeled time: base {r.baseline_seconds:.3f}s -> "
        f"tiled {r.tiled_seconds:.3f}s",
        f"  total-execution improvement      : {r.improvement_pct:.1f}% "
        f"(paper: 6%)",
    ])
