"""Simulate one (kernel, strategy, N) configuration end to end.

Pipeline per point:

1. tile selection (:func:`repro.core.selector.select`) against the L1
   capacity, using the kernel's stencil metadata;
2. array layout with the selected pads;
3. exact reference trace of the selected schedule, streamed in bounded
   address chunks (``chunk_size``) so peak memory is O(chunk), not
   O(trace);
4. two-level direct-mapped simulation (write-around);
5. analytic performance prediction from the miss counts.

Every point runs through one entry point::

    run_point(kernel, strategy, n, cfg, policy=PointPolicy(...))

where the :class:`~repro.experiments.options.PointPolicy` names the
machinery the point may use — nothing (the memoized exact fast path),
the analytic miss model, a retry/degrade budget, a checkpoint journal,
a persistent point store, a trace chunk bound — and sweeps carry the
same choices in one frozen :class:`~repro.experiments.options.SweepOptions`.
(The pre-``PointPolicy`` shims — ``run_point_resilient``,
``run_point_analytic``, the ``sweep(checkpoint=...)`` keyword forms —
completed their deprecation cycle and are gone.)

Caching is layered; a point is served by the first layer that has it:

* **journal** — this sweep's fingerprinted JSONL checkpoint
  (:mod:`repro.resilience.checkpoint`): crash/resume within one sweep;
* **store** — the persistent, content-addressed point cache
  (:mod:`repro.perf.store`): reuse across runs and across the parallel
  pool's processes, keyed by :func:`config_fingerprint` + point key;
* **memo** — the in-process ``lru_cache`` (plain points only; bounded
  by ``REPRO_POINT_CACHE`` entries, default 4096), letting Table 3 and
  the per-figure benches share sweeps within a session; inspect it with
  :func:`cache_info`.

Resilience semantics are unchanged from the previous API: budgeted
points retry transient failures with backoff and **degrade** to the
analytical miss model (``degraded=True``) on exhaustion; parallel
sweeps run points in supervised child processes with crash isolation
and quarantine (:mod:`repro.resilience.pool`); serial and parallel runs
share journal format and fingerprint, so either resumes the other.
Degraded points are journaled but never written to the point store —
a stand-in must not outlive the incident that caused it.

Durable sweeps (journal and/or store) additionally get **graceful
draining** (:mod:`repro.resilience.signals`): the first SIGINT/SIGTERM
lets in-flight points finish and journal, then raises
:class:`~repro.errors.SweepInterrupted` (CLI exit 130) with the journal
cleanly resumable; a second signal aborts immediately. Journal and
store are checksummed and lock-protected (see
:mod:`repro.resilience.checkpoint`, :mod:`repro.perf.store`), so
concurrent sweeps may share both.
"""

from __future__ import annotations

import contextlib
import logging
import math
import os
import time
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Mapping

from repro.cache.classify import MissClassifier
from repro.cache.hierarchy import CacheHierarchy
from repro.core.missmodel import tiled_miss_rate, untiled_miss_rate
from repro.core.selector import select
from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    ExperimentError,
    RetryableError,
    SweepInterrupted,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.options import PointPolicy, SweepOptions
from repro.ir.stencil import JACOBI_3D, REDBLACK_6PT, RESID_27PT
from repro.kernels import KERNELS, Schedule
from repro.obs import events, metrics
from repro.perf.store import PointStore, StoreInfo
from repro.perfmodel.model import RunCounts, predict
from repro.resilience import (
    CheckpointJournal,
    Deadline,
    PointBudget,
    fingerprint,
    run_with_retries,
)
from repro.resilience import faults
from repro.resilience.signals import DrainState, graceful_drain
from repro.types import SelectionResult

__all__ = ["PointResult", "RunnerCacheInfo", "run_point", "sweep",
           "open_journal", "open_store", "config_fingerprint",
           "clear_cache", "cache_info"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class PointResult:
    """Simulated outcome of one configuration."""

    kernel: str
    strategy: str
    n: int
    nk: int
    l1_rate: float          # global miss rate (misses / all refs), %
    l2_rate: float
    l1_misses: int
    l2_misses: int
    refs: int
    mflops: float
    seconds: float
    tile: tuple[int, int] | None
    di_p: int
    dj_p: int
    #: True when the point came from the analytical miss model (budget
    #: exceeded / retries exhausted) rather than exact trace simulation.
    degraded: bool = False
    #: True when steady-state K-plane extrapolation skipped at least
    #: one plane (:mod:`repro.experiments.extrapolate`; the statistics
    #: are still exact). False for full simulation, including
    #: ``extrapolate=True`` points that degraded to full simulation.
    extrapolated: bool = False

    @property
    def padded(self) -> bool:
        return self.di_p > self.n or self.dj_p > self.n


def _kernel_cls(kernel_name: str):
    try:
        return KERNELS[kernel_name]
    except KeyError:
        raise ExperimentError(
            f"unknown kernel {kernel_name!r}; valid: {sorted(KERNELS)}"
        ) from None


def _schedule_for(strategy: str, kernel: str,
                  sel: SelectionResult) -> Schedule:
    if not sel.tiled:
        return Schedule.UNTILED
    if strategy == "WolfLam3" and kernel != "REDBLACK":
        return Schedule.TILED_3LOOP
    return Schedule.TILED


def _tile_count(kernel, sel: SelectionResult, schedule: Schedule) -> int:
    if not sel.tiled:
        return 1
    ti, tj = sel.tile.ti, sel.tile.tj
    start = 1 if kernel.meta.name == "REDBLACK" else 2
    span = kernel.n - start
    tiles = math.ceil(span / ti) * math.ceil(span / tj)
    if schedule is Schedule.TILED_3LOOP and sel.array_tile is not None:
        tiles *= math.ceil((kernel.nk - 2) / max(1, sel.array_tile.tk))
    return max(1, tiles)


def _record_sim_metrics(hier: CacheHierarchy, stats, seconds: float) -> None:
    """Per-level access/miss counters plus the 3C classification."""
    metrics.observe("repro.sim.point_seconds", seconds)
    for (name, st), cls in zip(stats.levels, hier.classifiers):
        metrics.inc("repro.sim.accesses", st.accesses, level=name)
        metrics.inc("repro.sim.misses", st.misses, level=name)
        if cls is None:
            continue
        for c, cnt in cls.counts.items():
            if cnt:
                metrics.inc("repro.sim.miss_class", cnt, level=name, cls=c)
        for arr, cnt in cls.by_array.items():
            if cnt:
                metrics.inc("repro.sim.miss_array", cnt, level=name, array=arr)


def _simulate_exact(kernel_name: str, strategy: str, n: int,
                    cfg: ExperimentConfig,
                    budget: PointBudget | None = None,
                    chunk_size: int | None = None,
                    extrapolate: bool = False,
                    trace_form: str = "auto",
                    clock=time.monotonic) -> PointResult:
    """One exact trace simulation, optionally under a budget's deadline.

    ``chunk_size`` bounds the addresses materialized per trace chunk
    (``None`` = the generator's default bound, ``0`` = unbounded); the
    simulated statistics are bit-for-bit identical for every value.
    ``extrapolate`` enables the exact steady-state K-plane mode
    (:mod:`repro.experiments.extrapolate`): identical statistics, but
    planes proven shift-equivalent are costed in closed form instead of
    simulated. Extrapolation disables the shadow miss classifiers
    (skipped planes could not be classified), so ``--metrics`` points
    keep full simulation even when both are requested.

    ``trace_form`` selects the trace representation (statistics are
    bit-for-bit identical across forms): ``"auto"`` resolves to the
    run-compressed form except where a consumer needs materialized
    chunks anyway — the extrapolation path replays flat per-plane
    chunks, and attached miss classifiers force the legacy per-chunk
    loop, which would just re-expand every run.
    """
    faults.tick("simulate")
    kern = _kernel_cls(kernel_name)(n, cfg.nk, elem_bytes=cfg.elem_bytes)
    meta = kern.meta
    sel = select(strategy, cfg.cs, n, n, mi=meta.mi, mj=meta.mj, atd=meta.atd)
    schedule = _schedule_for(strategy, kernel_name, sel)

    deadline = (Deadline(budget, clock)
                if budget is not None and budget.bounded else None)
    hier = CacheHierarchy(cfg.levels)
    inter_pad = cfg.cs if cfg.inter_pad else None
    classify = metrics.enabled() and not extrapolate
    form = trace_form
    if form == "auto":
        form = "flat" if (extrapolate or classify) else "runs"
    if classify:
        # Shadow-LRU miss classification is a Python-loop cost, so it is
        # attached only when a registry is collecting (``--metrics``).
        specs = kern.specs(sel.di_p, sel.dj_p, inter_pad_cache=inter_pad)
        ranges = [(s.name, s.base * s.elem_bytes, s.end * s.elem_bytes)
                  for s in specs.values()]
        hier.attach_classifiers(
            [MissClassifier(p, ranges) for p in cfg.levels])

    def on_chunk(addrs) -> None:
        faults.tick("chunk")
        if deadline is not None:
            deadline.check(len(addrs))

    extrapolated = False
    t0 = time.perf_counter()
    with events.span("simulate", kernel=kernel_name, strategy=strategy,
                     n=n) as sp:
        if extrapolate:
            from repro.experiments.extrapolate import simulate_extrapolated

            stats, xrep = simulate_extrapolated(
                kern, sel, schedule, hier, inter_pad=inter_pad,
                chunk_size=chunk_size, on_chunk=on_chunk)
            extrapolated = xrep.fired
            sp["extrapolated"] = xrep.fired
            events.emit("extrapolate", kernel=kernel_name,
                        strategy=strategy, n=n, fired=xrep.fired,
                        period=xrep.period,
                        planes_simulated=xrep.planes_simulated,
                        planes_skipped=xrep.planes_skipped,
                        reason=xrep.reason)
            metrics.inc("repro.cache.extrapolation",
                        outcome="fired" if xrep.fired else "fallback",
                        reason=xrep.reason or "none")
            if xrep.planes_skipped:
                metrics.inc("repro.cache.extrapolation_planes_skipped",
                            xrep.planes_skipped)
        else:
            stats = hier.run(
                kern.trace(sel, schedule, inter_pad_cache=inter_pad,
                           chunk_size=chunk_size, structured=True,
                           trace_form=form),
                on_chunk=on_chunk)
        sp["refs"] = stats.demand_refs
    if metrics.enabled():
        _record_sim_metrics(hier, stats, time.perf_counter() - t0)

    l1_rate = stats.global_miss_rate(0, include_writes=cfg.include_writes)
    l2_rate = stats.global_miss_rate(1, include_writes=cfg.include_writes)

    counts = RunCounts(
        iterations=kern.interior_points(),
        flops=kern.sweep_flops(),
        refs=kern.sweep_refs(),
        l1_misses=stats.misses(0),
        l2_misses=stats.misses(1),
        tiles=_tile_count(kern, sel, schedule),
    )
    perf = predict(counts, cfg.machine)

    return PointResult(
        kernel=kernel_name, strategy=strategy, n=n, nk=cfg.nk,
        l1_rate=100.0 * l1_rate, l2_rate=100.0 * l2_rate,
        l1_misses=stats.misses(0), l2_misses=stats.misses(1),
        refs=stats.demand_refs, mflops=perf.mflops, seconds=perf.seconds,
        tile=sel.tile.as_tuple() if sel.tile else None,
        di_p=sel.di_p, dj_p=sel.dj_p,
        extrapolated=extrapolated,
    )


def _cache_size() -> int | None:
    """Memo bound from ``REPRO_POINT_CACHE`` (<= 0 means unbounded)."""
    try:
        size = int(os.environ.get("REPRO_POINT_CACHE", "4096"))
    except ValueError:
        size = 4096
    return size if size > 0 else None


@lru_cache(maxsize=_cache_size())
def _run_point_cached(kernel_name: str, strategy: str, n: int,
                      cfg: ExperimentConfig) -> PointResult:
    return _simulate_exact(kernel_name, strategy, n, cfg)


# ----------------------------------------------------------------------
# analytic degradation
# ----------------------------------------------------------------------

#: Read-stencil pattern feeding the analytic model, per kernel.
_STENCILS = {
    "JACOBI": JACOBI_3D,
    "REDBLACK": REDBLACK_6PT,
    "RESID": RESID_27PT,
    "PSINV": RESID_27PT,
}


def _analytic_point(kernel: str, strategy: str, n: int,
                    cfg: ExperimentConfig) -> PointResult:
    """Estimate one configuration from the analytical miss model.

    The capacity-only model of :mod:`repro.core.missmodel` stands in
    for exact simulation when a point's budget ran out: untiled
    schedules use the group-reuse/wrap condition on the *padded* column
    stride, tiled schedules the Section 2.3 cost-per-line bound. The
    result is marked ``degraded=True``; it tracks simulation within
    ~15% at benign sizes and under-predicts conflict pathologies
    (which is exactly the information an exact run would have added).
    """
    kern = _kernel_cls(kernel)(n, cfg.nk, elem_bytes=cfg.elem_bytes)
    meta = kern.meta
    sel = select(strategy, cfg.cs, n, n, mi=meta.mi, mj=meta.mj, atd=meta.atd)
    schedule = _schedule_for(strategy, kernel, sel)
    try:
        stencil = _STENCILS[kernel]
    except KeyError:
        raise ExperimentError(
            f"no analytic stencil model for kernel {kernel!r}; "
            f"valid: {sorted(_STENCILS)}") from None

    refs_per_iter = meta.reads + meta.writes
    refs = kern.sweep_refs()

    def rate_at(params) -> float:
        line = params.line_elements()
        capacity = params.capacity_elements(cfg.elem_bytes)
        if sel.tiled:
            pred = tiled_miss_rate(sel.tile.ti, sel.tile.tj, meta.mi,
                                   meta.mj, line, refs_per_iter)
        else:
            pred = untiled_miss_rate(stencil.offsets, sel.di_p, capacity,
                                     line, refs_per_iter)
        return min(1.0, pred.miss_rate)

    metrics.inc("repro.runner.points", mode="analytic")
    l1_rate = rate_at(cfg.l1)
    l2_rate = min(rate_at(cfg.l2), l1_rate)
    l1_misses = round(l1_rate * refs)
    l2_misses = round(l2_rate * refs)

    counts = RunCounts(
        iterations=kern.interior_points(),
        flops=kern.sweep_flops(),
        refs=refs,
        l1_misses=l1_misses,
        l2_misses=l2_misses,
        tiles=_tile_count(kern, sel, schedule),
    )
    perf = predict(counts, cfg.machine)

    return PointResult(
        kernel=kernel, strategy=strategy, n=n, nk=cfg.nk,
        l1_rate=100.0 * l1_rate, l2_rate=100.0 * l2_rate,
        l1_misses=l1_misses, l2_misses=l2_misses,
        refs=refs, mflops=perf.mflops, seconds=perf.seconds,
        tile=sel.tile.as_tuple() if sel.tile else None,
        di_p=sel.di_p, dj_p=sel.dj_p,
        degraded=True,
    )


# ----------------------------------------------------------------------
# fingerprints, journals, stores
# ----------------------------------------------------------------------

def config_fingerprint(cfg: ExperimentConfig) -> str:
    """Fingerprint of everything that affects a point's numbers."""
    import repro

    return fingerprint({
        "repro": repro.__version__,
        "config": asdict(cfg),
    })


def open_journal(path, cfg: ExperimentConfig | None = None, *,
                 force: bool = False) -> CheckpointJournal:
    """Open/create a checkpoint journal bound to ``cfg``'s fingerprint.

    Raises :class:`~repro.errors.CheckpointError` when ``path`` holds a
    journal written under a different configuration; ``force`` (the
    CLI's ``--resume-force``) adopts such a journal with a warning.
    """
    return CheckpointJournal.open(
        path, config_fingerprint(cfg or ExperimentConfig()), force=force)


def open_store(point_cache) -> PointStore | None:
    """Coerce ``point_cache`` (path / PointStore / None) to a store."""
    if point_cache is None or isinstance(point_cache, PointStore):
        return point_cache
    return PointStore(point_cache)


def _resolve_journal(checkpoint, cfg: ExperimentConfig, *,
                     force: bool) -> CheckpointJournal | None:
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return open_journal(checkpoint, cfg, force=force)


# ----------------------------------------------------------------------
# payload round-tripping
# ----------------------------------------------------------------------

def _point_to_payload(p: PointResult) -> dict:
    return asdict(p)


def _point_from_payload(payload: dict) -> PointResult:
    d = dict(payload)
    if d.get("tile") is not None:
        d["tile"] = tuple(d["tile"])
    try:
        return PointResult(**d)
    except TypeError as exc:
        raise CheckpointError(
            f"checkpoint record does not match PointResult: {exc}"
        ) from None


#: PointResult fields that must round-trip as real numbers / integers.
_FLOAT_FIELDS = ("l1_rate", "l2_rate", "mflops", "seconds")
_INT_FIELDS = ("n", "nk", "l1_misses", "l2_misses", "refs", "di_p", "dj_p")


def _check_payload(key, payload) -> PointResult:
    """Round-trip + type validation of a point payload for ``key``.

    Worker payloads (and journal/store records) are only trusted after
    they reconstruct into a :class:`PointResult` whose identity matches
    the task key and whose fields carry the right types — a truncated or
    type-mangled payload from a dying worker raises
    :class:`~repro.errors.CheckpointError` and is treated as a failed
    attempt, never journaled.
    """
    if not isinstance(payload, Mapping):
        raise CheckpointError(
            f"point payload for {key!r} is {type(payload).__name__}, "
            f"not a mapping")
    expected = set(PointResult.__dataclass_fields__)
    got = set(payload)
    # 'extrapolated' is the one field older journals/stores legitimately
    # lack (it was added after they were written); it defaults to False,
    # which is also what those records meant.
    if got - expected or (expected - got) - {"extrapolated"}:
        # asdict always emits every field, so any other difference means
        # a truncated or garbage-extended payload (defaults would other-
        # wise mask a missing 'degraded').
        missing, extra = sorted(expected - got), sorted(got - expected)
        raise CheckpointError(
            f"point payload for {key!r} has wrong fields "
            f"(missing {missing}, unexpected {extra})")
    result = _point_from_payload(payload)
    if (result.kernel, result.strategy, result.n) != tuple(key):
        raise CheckpointError(
            f"point payload identity "
            f"{(result.kernel, result.strategy, result.n)!r} does not "
            f"match its key {tuple(key)!r}")
    for name in _FLOAT_FIELDS:
        v = getattr(result, name)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise CheckpointError(
                f"point payload field {name!r} is "
                f"{type(v).__name__}, expected a number")
    for name in _INT_FIELDS:
        v = getattr(result, name)
        if isinstance(v, bool) or not isinstance(v, int):
            raise CheckpointError(
                f"point payload field {name!r} is "
                f"{type(v).__name__}, expected an int")
    if not isinstance(result.degraded, bool):
        raise CheckpointError("point payload field 'degraded' must be a bool")
    if not isinstance(result.extrapolated, bool):
        raise CheckpointError(
            "point payload field 'extrapolated' must be a bool")
    tile = result.tile
    if tile is not None and (len(tile) != 2 or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in tile)):
        raise CheckpointError(
            f"point payload field 'tile' is {tile!r}, expected None "
            f"or two ints")
    return result


def _store_lookup(store: PointStore, fingerprint_: str,
                  key: tuple) -> PointResult | None:
    """Validated store hit, or ``None`` (invalid entries read as misses).

    An entry that parses and checksums but fails :func:`_check_payload`
    (wrong identity, mangled field types) is *semantically* poisoned:
    it must be quarantined, not merely skipped — a skipped entry stays
    on disk and re-reads as a miss forever (a degraded re-simulation is
    never stored, so nothing ever overwrites it), poisoning every
    future consumer.
    """
    payload = store.get(fingerprint_, key)
    if payload is None:
        return None
    try:
        return _check_payload(key, payload)
    except CheckpointError as exc:
        log.warning("quarantining invalid point-cache entry for %r (%s)",
                    key, exc)
        store.discard(fingerprint_, key,
                      reason=f"failed payload validation: {exc}")
        return None


# ----------------------------------------------------------------------
# the unified point entry
# ----------------------------------------------------------------------

def _compute_point(kernel: str, strategy: str, n: int,
                   cfg: ExperimentConfig,
                   budget: PointBudget | None,
                   chunk_size: int | None = None,
                   extrapolate: bool = False,
                   trace_form: str = "auto") -> PointResult:
    """Exact simulation under ``budget``, degrading to the model.

    The shared core of serial resilient execution and the pool worker:
    retryable failures retry with backoff; budget exhaustion (or
    exhausted retries) degrades to the analytic miss model with
    ``degraded=True``.
    """
    budget = budget or PointBudget()
    clock = faults.active_clock()
    try:
        result = run_with_retries(
            lambda: _simulate_exact(kernel, strategy, n, cfg,
                                    budget=budget, chunk_size=chunk_size,
                                    extrapolate=extrapolate,
                                    trace_form=trace_form, clock=clock),
            budget, sleep=faults.active_sleep())
        metrics.inc("repro.runner.points", mode="exact")
        return result
    except (BudgetExceededError, RetryableError) as exc:
        log.warning("point %s/%s/N=%d degraded to the analytic model "
                    "(%s: %s)", kernel, strategy, n,
                    type(exc).__name__, exc)
        events.emit("degraded", kernel=kernel, strategy=strategy, n=n,
                    reason=type(exc).__name__)
        metrics.inc("repro.resilience.degraded")
        return _analytic_point(kernel, strategy, n, cfg)


def run_point(kernel: str, strategy: str, n: int,
              cfg: ExperimentConfig | None = None, *,
              policy: PointPolicy | None = None) -> PointResult:
    """Simulate one configuration under ``policy``.

    The default policy is the memoized exact fast path. A policy with
    ``analytic=True`` returns the miss-model estimate; one carrying a
    journal and/or store serves the point from the first cache layer
    that has it (journal, then store) and records new results back; a
    ``budget`` adds retry/degrade bounds; ``chunk_size`` bounds trace
    memory. See :class:`~repro.experiments.options.PointPolicy`.
    """
    cfg = cfg or ExperimentConfig()
    policy = policy or PointPolicy()
    with events.span("point", kernel=kernel, strategy=strategy, n=n) as sp:
        if policy.plain:
            result = _run_point_cached(kernel, strategy, n, cfg)
            sp["degraded"] = result.degraded
            metrics.inc("repro.runner.points", mode="exact")
            return result
        if policy.analytic:
            result = _analytic_point(kernel, strategy, n, cfg)
            sp["source"] = "analytic"
            sp["degraded"] = True
            return result

        key = (kernel, strategy, n)
        if policy.journal is not None:
            payload = policy.journal.get(key)
            if payload is not None:
                result = _point_from_payload(payload)
                sp["source"] = "journal"
                sp["degraded"] = result.degraded
                metrics.inc("repro.runner.points", mode="journal")
                return result
        if policy.store is not None:
            result = _store_lookup(policy.store, config_fingerprint(cfg), key)
            if result is not None:
                sp["source"] = "store"
                sp["degraded"] = result.degraded
                metrics.inc("repro.runner.points", mode="store")
                if policy.journal is not None:
                    # Promote into this sweep's checkpoint so a resumed
                    # run skips the store round-trip too.
                    policy.journal.record(key, _point_to_payload(result))
                return result

        result = _compute_point(kernel, strategy, n, cfg,
                                policy.budget, policy.chunk_size,
                                policy.extrapolate, policy.trace_form)
        sp["degraded"] = result.degraded
        payload = _point_to_payload(result)
        if policy.journal is not None:
            policy.journal.record(key, payload)
        if policy.store is not None and not result.degraded:
            policy.store.put(config_fingerprint(cfg), key, payload)
        return result


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------

def _pool_point_task(args) -> dict:
    """Worker-side pool entry: compute one point, return its payload.

    Runs in a child process (crash/OOM/hang isolation); must stay a
    module-level function so ``spawn`` platforms can pickle it. The
    supervisor round-trips the payload through :func:`_check_payload`
    before trusting it.
    """
    # Producers predating trace_form (e.g. the advisor backend) send
    # 7-tuples; the representation defaults to "auto" for them.
    (kernel, strategy, n, cfg, budget, chunk_size, extrapolate,
     *rest) = args
    trace_form = rest[0] if rest else "auto"
    return _point_to_payload(
        _compute_point(kernel, strategy, n, cfg, budget, chunk_size,
                       extrapolate, trace_form))


def _sweep_parallel(kernel: str, strategies: list[str], sizes: list[int],
                    cfg: ExperimentConfig, *,
                    journal: CheckpointJournal | None,
                    store: PointStore | None,
                    budget: PointBudget | None,
                    workers: int,
                    point_timeout: float | None,
                    chunk_size: int | None,
                    extrapolate: bool = False,
                    trace_form: str = "auto",
                    drain: DrainState | None = None,
                    status=None,
                    ) -> dict[str, list[PointResult]]:
    """Run sweep points through the supervised process pool.

    Journal and store hits are served without spawning a worker;
    everything else fans out. The supervisor validates every payload,
    records it to the journal and store (single writer — workers never
    touch either), and quarantines repeatedly-failing points to the
    analytic model — the sweep always returns a full grid.
    """
    from repro.resilience.pool import PoolPolicy, run_supervised

    fp = config_fingerprint(cfg)
    results: dict[tuple, PointResult] = {}
    tasks: list[tuple[tuple, tuple]] = []
    for strategy in strategies:
        for n in sizes:
            key = (kernel, strategy, n)
            payload = journal.get(key) if journal is not None else None
            if payload is not None:
                results[key] = _check_payload(key, payload)
                metrics.inc("repro.runner.points", mode="journal")
                events.emit("point", kernel=kernel, strategy=strategy, n=n,
                            degraded=results[key].degraded, source="journal")
                if status is not None:
                    status.point_done(degraded=results[key].degraded)
                continue
            hit = (_store_lookup(store, fp, key)
                   if store is not None else None)
            if hit is not None:
                results[key] = hit
                metrics.inc("repro.runner.points", mode="store")
                events.emit("point", kernel=kernel, strategy=strategy, n=n,
                            degraded=hit.degraded, source="store")
                if status is not None:
                    status.point_done(degraded=hit.degraded)
                if journal is not None:
                    journal.record(key, _point_to_payload(hit))
                continue
            tasks.append((key, (kernel, strategy, n, cfg, budget,
                                chunk_size, extrapolate, trace_form)))

    retry_policy = budget or PointBudget()
    policy = PoolPolicy(workers=workers, point_timeout=point_timeout,
                        max_retries=retry_policy.max_retries,
                        backoff_seconds=retry_policy.backoff_seconds)

    def fallback(key, args) -> dict:
        k, s, n, cfg_ = args[:4]
        return _point_to_payload(_analytic_point(k, s, n, cfg_))

    def on_result(key, payload, quarantined) -> None:
        result = _check_payload(key, payload)
        results[key] = result
        if not quarantined:
            # Quarantined fallbacks already counted mode="analytic"
            # inside _analytic_point (supervisor side).
            metrics.inc("repro.runner.points",
                        mode="analytic" if result.degraded else "exact")
        events.emit("point", kernel=key[0], strategy=key[1], n=key[2],
                    degraded=result.degraded,
                    source="quarantine" if quarantined else "worker")
        if status is not None:
            status.point_done(degraded=result.degraded,
                              quarantined=quarantined)
        if journal is not None:
            journal.record(key, payload)
        if store is not None and not result.degraded:
            store.put(fp, key, payload)

    if tasks:
        log.info("parallel sweep %s: %d points across %d workers "
                 "(timeout %s)", kernel, len(tasks), workers,
                 f"{point_timeout}s" if point_timeout else "none")
        outcomes = run_supervised(_pool_point_task, tasks, policy,
                                  validate=_check_payload, fallback=fallback,
                                  on_result=on_result, drain=drain,
                                  span_name="point", observer=status)
        skipped = sum(1 for o in outcomes if o.skipped)
        if skipped:
            raise SweepInterrupted(
                f"sweep drained after {drain.signal_name()}: "
                f"{len(results)} point(s) completed and journaled, "
                f"{skipped} skipped (resume from the checkpoint)",
                signum=drain.signum, completed=len(results),
                skipped=skipped)
    return {s: [results[(kernel, s, n)] for n in sizes]
            for s in strategies}


def sweep(kernel: str, strategies: list[str], sizes: list[int],
          cfg: ExperimentConfig | None = None, *,
          options: SweepOptions | None = None
          ) -> dict[str, list[PointResult]]:
    """Run a full (strategy x size) sweep for one kernel.

    All execution choices travel in one frozen
    :class:`~repro.experiments.options.SweepOptions`:

    * ``checkpoint``/``resume_force`` — completed points are journaled
      and skipped on resume;
    * ``budget``/``point_timeout`` — over-budget points degrade to the
      analytic model;
    * ``point_cache`` — points are served from / recorded to the
      persistent store, shared across runs and processes;
    * ``parallel`` — points fan out to supervised worker processes
      (:mod:`repro.resilience.pool`): a crashed, hung, or timed-out
      worker is SIGKILLed, retried, and finally quarantined to the
      analytic model; where multiprocessing is unavailable the sweep
      degrades to the serial path (``point_timeout`` then applies as a
      per-point wall-clock budget);
    * ``chunk_size`` — trace memory bound (results are bit-for-bit
      independent of it).

    With default options the fast memoized path is used unchanged.
    Durable sweeps (a journal and/or store) drain gracefully on
    SIGINT/SIGTERM: in-flight points finish and journal, then the sweep
    raises :class:`~repro.errors.SweepInterrupted` — resumable, exit
    code 130 at the CLI. A plain in-memory sweep keeps ordinary Ctrl-C
    behaviour.
    """
    from repro.obs import context as obs_context
    from repro.obs.status import StatusPublisher

    options = options or SweepOptions()
    cfg = cfg or ExperimentConfig()
    log.debug("sweep %s: %d strategies x %d sizes", kernel,
              len(strategies), len(sizes))
    status = StatusPublisher.for_run(obs_context.current(),
                                     total=len(strategies) * len(sizes),
                                     kernel=kernel)
    with events.span("sweep", kernel=kernel, strategies=len(strategies),
                     sizes=len(sizes), parallel=options.parallel):
        use_parallel = options.parallel > 1
        if use_parallel:
            from repro.resilience import pool

            if not pool.available():
                log.warning("multiprocessing unavailable on this platform; "
                            "running the sweep serially")
                use_parallel = False
        journal = _resolve_journal(options.checkpoint, cfg,
                                   force=options.resume_force)
        store = open_store(options.point_cache)
        durable = journal is not None or store is not None
        drain_cm = (graceful_drain() if durable
                    else contextlib.nullcontext(None))
        with drain_cm as drain:
            if use_parallel:
                out = _sweep_parallel(kernel, strategies, sizes, cfg,
                                      journal=journal, store=store,
                                      budget=options.budget,
                                      workers=options.parallel,
                                      point_timeout=options.point_timeout,
                                      chunk_size=options.chunk_size,
                                      extrapolate=options.extrapolate,
                                      trace_form=options.trace_form,
                                      drain=drain, status=status)
                if status is not None:
                    status.finish()
                return out
            budget = options.budget
            if options.point_timeout is not None and budget is None:
                # Serial degradation of --point-timeout: no supervisor to
                # SIGKILL, so enforce it as an in-process wall budget.
                budget = PointBudget(wall_seconds=options.point_timeout)
            policy = PointPolicy(budget=budget, journal=journal, store=store,
                                 chunk_size=options.chunk_size,
                                 extrapolate=options.extrapolate,
                                 trace_form=options.trace_form)
            results: dict[str, list[PointResult]] = {}
            completed = 0
            remaining = len(strategies) * len(sizes)
            for s in strategies:
                row = []
                for n in sizes:
                    if drain is not None and drain.requested:
                        raise SweepInterrupted(
                            f"sweep drained after {drain.signal_name()}: "
                            f"{completed} point(s) completed and "
                            f"journaled, {remaining} skipped (resume "
                            f"from the checkpoint)",
                            signum=drain.signum, completed=completed,
                            skipped=remaining)
                    result = run_point(kernel, s, n, cfg, policy=policy)
                    row.append(result)
                    completed += 1
                    remaining -= 1
                    if status is not None:
                        status.point_done(degraded=result.degraded)
                results[s] = row
            if status is not None:
                status.finish()
            return results


# ----------------------------------------------------------------------
# cache administration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunnerCacheInfo:
    """Combined view of the in-process memo and the persistent store.

    The first four fields mirror ``functools.lru_cache.cache_info()``
    so existing consumers (``repro.obs``, tests) keep working; ``store``
    is present only when a persistent store was passed to
    :func:`cache_info`.
    """

    hits: int
    misses: int
    maxsize: int | None
    currsize: int
    store: StoreInfo | None = None


def clear_cache(store=None) -> int:
    """Drop memoized results; with ``store``, empty the persistent one.

    Returns the number of persistent entries removed (0 without a
    store). After a clear, nothing is served stale: the next
    :func:`run_point` re-simulates and re-populates both layers.
    """
    _run_point_cached.cache_clear()
    resolved = open_store(store)
    return resolved.clear() if resolved is not None else 0


def cache_info(store=None) -> RunnerCacheInfo:
    """Memo statistics, plus the persistent store's when one is given."""
    memo = _run_point_cached.cache_info()
    resolved = open_store(store)
    return RunnerCacheInfo(
        hits=memo.hits, misses=memo.misses, maxsize=memo.maxsize,
        currsize=memo.currsize,
        store=resolved.info() if resolved is not None else None)
