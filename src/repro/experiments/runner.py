"""Simulate one (kernel, strategy, N) configuration end to end.

Pipeline per point:

1. tile selection (:func:`repro.core.selector.select`) against the L1
   capacity, using the kernel's stencil metadata;
2. array layout with the selected pads;
3. exact reference trace of the selected schedule;
4. two-level direct-mapped simulation (write-around);
5. analytic performance prediction from the miss counts.

Results are memoized per process (keyed by the full configuration) so
that Table 3 and the per-figure benches share sweeps within a session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.cache.hierarchy import CacheHierarchy
from repro.core.selector import select
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.kernels import KERNELS, Schedule
from repro.perfmodel.model import RunCounts, predict
from repro.types import SelectionResult

__all__ = ["PointResult", "run_point", "sweep", "clear_cache"]


@dataclass(frozen=True)
class PointResult:
    """Simulated outcome of one configuration."""

    kernel: str
    strategy: str
    n: int
    nk: int
    l1_rate: float          # global miss rate (misses / all refs), %
    l2_rate: float
    l1_misses: int
    l2_misses: int
    refs: int
    mflops: float
    seconds: float
    tile: tuple[int, int] | None
    di_p: int
    dj_p: int

    @property
    def padded(self) -> bool:
        return self.di_p > self.n or self.dj_p > self.n


def _schedule_for(strategy: str, kernel: str,
                  sel: SelectionResult) -> Schedule:
    if not sel.tiled:
        return Schedule.UNTILED
    if strategy == "WolfLam3" and kernel != "REDBLACK":
        return Schedule.TILED_3LOOP
    return Schedule.TILED


def _tile_count(kernel, sel: SelectionResult, schedule: Schedule) -> int:
    if not sel.tiled:
        return 1
    ti, tj = sel.tile.ti, sel.tile.tj
    start = 1 if kernel.meta.name == "REDBLACK" else 2
    span = kernel.n - start
    tiles = math.ceil(span / ti) * math.ceil(span / tj)
    if schedule is Schedule.TILED_3LOOP and sel.array_tile is not None:
        tiles *= math.ceil((kernel.nk - 2) / max(1, sel.array_tile.tk))
    return max(1, tiles)


@lru_cache(maxsize=None)
def _run_point_cached(kernel_name: str, strategy: str, n: int,
                      cfg: ExperimentConfig) -> PointResult:
    try:
        kernel_cls = KERNELS[kernel_name]
    except KeyError:
        raise ExperimentError(
            f"unknown kernel {kernel_name!r}; valid: {sorted(KERNELS)}"
        ) from None
    kern = kernel_cls(n, cfg.nk, elem_bytes=cfg.elem_bytes)
    meta = kern.meta
    sel = select(strategy, cfg.cs, n, n, mi=meta.mi, mj=meta.mj, atd=meta.atd)
    schedule = _schedule_for(strategy, kernel_name, sel)

    hier = CacheHierarchy(cfg.levels)
    inter_pad = cfg.cs if cfg.inter_pad else None
    for addrs, w in kern.trace(sel, schedule, inter_pad_cache=inter_pad):
        hier.access(addrs, w)
    stats = hier.stats()

    l1_rate = stats.global_miss_rate(0, include_writes=cfg.include_writes)
    l2_rate = stats.global_miss_rate(1, include_writes=cfg.include_writes)

    counts = RunCounts(
        iterations=kern.interior_points(),
        flops=kern.sweep_flops(),
        refs=kern.sweep_refs(),
        l1_misses=stats.misses(0),
        l2_misses=stats.misses(1),
        tiles=_tile_count(kern, sel, schedule),
    )
    perf = predict(counts, cfg.machine)

    return PointResult(
        kernel=kernel_name, strategy=strategy, n=n, nk=cfg.nk,
        l1_rate=100.0 * l1_rate, l2_rate=100.0 * l2_rate,
        l1_misses=stats.misses(0), l2_misses=stats.misses(1),
        refs=stats.demand_refs, mflops=perf.mflops, seconds=perf.seconds,
        tile=sel.tile.as_tuple() if sel.tile else None,
        di_p=sel.di_p, dj_p=sel.dj_p,
    )


def run_point(kernel: str, strategy: str, n: int,
              cfg: ExperimentConfig | None = None) -> PointResult:
    """Simulate one configuration (memoized)."""
    return _run_point_cached(kernel, strategy, n, cfg or ExperimentConfig())


def sweep(kernel: str, strategies: list[str], sizes: list[int],
          cfg: ExperimentConfig | None = None
          ) -> dict[str, list[PointResult]]:
    """Run a full (strategy x size) sweep for one kernel."""
    cfg = cfg or ExperimentConfig()
    return {s: [run_point(kernel, s, n, cfg) for n in sizes]
            for s in strategies}


def clear_cache() -> None:
    """Drop memoized results (tests use this to force fresh runs)."""
    _run_point_cached.cache_clear()
