"""Section 1 verification: where 2D keeps reuse and 3D loses it.

Three claims from the paper's introduction, checked both analytically
(:mod:`repro.core.capacity`) and by direct simulation:

* a 16K L1 (2048 doubles) preserves 2D Jacobi group reuse up to
  **1024 x M** arrays;
* the same cache preserves 3D Jacobi group reuse only up to
  **32 x 32 x M**;
* a 2M L2 (262144 doubles) loses 3D group reuse past **362 x 362 x M**.

Simulated verification uses a *fully associative* cache of the same
capacity so the boundary is purely a capacity effect (direct-mapped
conflicts blur the edge, which is the paper's Section 3 subject). The
observable: the trailing reference ``B(I, J, K-1)`` hits when reuse is
preserved, misses when the planes no longer fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.params import CacheParams
from repro.core.capacity import max_2d_column_len, max_3d_plane_len
from repro.kernels.jacobi2d import Jacobi2D
from repro.kernels.jacobi3d import Jacobi3D
from repro.types import SelectionResult

__all__ = ["CapacityCheck", "section1_thresholds", "verify_boundary_3d",
           "verify_boundary_2d", "trailing_ref_hit_rate"]


@dataclass(frozen=True)
class CapacityCheck:
    """Analytical thresholds for the paper's two cache sizes."""

    l1_capacity: int = 2048
    l2_capacity: int = 262144

    @property
    def max_2d_l1(self) -> int:
        return max_2d_column_len(self.l1_capacity)      # 1024

    @property
    def max_3d_l1(self) -> int:
        return max_3d_plane_len(self.l1_capacity)       # 32

    @property
    def max_3d_l2(self) -> int:
        return max_3d_plane_len(self.l2_capacity)       # 362


def section1_thresholds() -> CapacityCheck:
    return CapacityCheck()


def trailing_ref_hit_rate(kernel, cache,
                          trailing_index: int) -> float:
    """Fraction of trailing-reference accesses that hit in ``cache``.

    ``trailing_index`` selects which reference of the kernel's list is
    the trailing one (reuse beneficiary).
    """
    if isinstance(kernel, Jacobi2D):
        tr = kernel.trace()
    else:
        sel = SelectionResult(strategy="Orig", tile=None,
                              di_p=kernel.n, dj_p=kernel.n)
        tr = kernel.trace(sel)
    hits = 0
    total = 0
    nreads = _refs_per_iter(kernel) - 1  # one write per iteration
    for addrs, w in tr:
        # Write-around (the paper's assumption): the write to A never
        # enters the cache, so only read references are simulated.
        miss = cache.access(addrs[~w])
        lane = miss.reshape(-1, nreads)[:, trailing_index]
        hits += int((~lane).sum())
        total += lane.size
    return hits / total if total else 0.0


def _refs_per_iter(kernel) -> int:
    if isinstance(kernel, Jacobi2D):
        return kernel.reads + kernel.writes
    return kernel.meta.reads + kernel.meta.writes


def _element_grain_dm(capacity_elements: int,
                      elem_bytes: int = 8) -> CacheParams:
    """Direct-mapped cache with one element per line.

    The paper's two-columns/two-planes argument is a *direct-mapped*
    property: the live window spans ``2N`` (or ``2N^2``) consecutive
    addresses, which map to distinct sets whenever the span is below the
    capacity. (A fully associative LRU cache actually needs ~3 columns —
    the window of distinct elements between first and last touch — so it
    is the wrong model for this check.)
    """
    size = capacity_elements * elem_bytes
    return CacheParams(size_bytes=size, line_bytes=elem_bytes, assoc=1,
                       name="DM")


def verify_boundary_2d(capacity_elements: int = 2048,
                       elem_bytes: int = 8) -> dict[int, float]:
    """Trailing-ref hit rates for 2D Jacobi around N = capacity/2.

    Well below the bound the trailing reference hits essentially always;
    above it, essentially never.
    """
    bound = max_2d_column_len(capacity_elements)  # 1024 for the 16K L1
    rates = {}
    for n in (bound // 2, bound - 24, bound + 76, 2 * bound):
        kern = Jacobi2D(n, 24, elem_bytes=elem_bytes)
        cache = DirectMappedCache(_element_grain_dm(capacity_elements,
                                                    elem_bytes))
        # Trailing read is B(I, J-1): index 2 in JACOBI_2D offset order.
        rates[n] = trailing_ref_hit_rate(kern, cache, 2)
    return rates


def verify_boundary_3d(capacity_elements: int = 2048,
                       elem_bytes: int = 8) -> dict[int, float]:
    """Trailing-ref hit rates for 3D Jacobi around N = sqrt(capacity/2)."""
    bound = max_3d_plane_len(capacity_elements)  # 32 for the 16K L1
    rates = {}
    for n in (bound - 4, bound + 4, 2 * bound):
        kern = Jacobi3D(n, 12, elem_bytes=elem_bytes)
        cache = DirectMappedCache(_element_grain_dm(capacity_elements,
                                                    elem_bytes))
        # Trailing read is B(I, J, K-1): index 4 in JACOBI_3D offset order.
        rates[n] = trailing_ref_hit_rate(kern, cache, 4)
    return rates
