"""Table 3: average performance and miss-rate improvements, N = 200..400.

Improvement conventions follow Section 4.3 exactly:

* ``% perf`` — mean over problem sizes of the per-size percentage MFlops
  improvement over Orig;
* ``L1/L2 miss rate`` — the *difference* of average miss rates in
  percentage points ("a drop in the average miss rate from 10 to 8 is an
  improvement of 2%, not 20%").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace

from repro.experiments.config import ExperimentConfig, default_sizes
from repro.experiments.options import SweepOptions
from repro.experiments.report import format_table, provenance_note
from repro.experiments.runner import (
    PointResult,
    _resolve_journal,
    open_store,
    sweep,
)
from repro.experiments.transforms_table import PAPER_STRATEGIES

__all__ = ["KernelSummary", "Table3Result", "table3", "format_table3"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class KernelSummary:
    """One kernel's Table 3 block."""

    kernel: str
    orig_l1: float
    orig_l2: float
    # per strategy: (perf %, L1 pp, L2 pp)
    improvements: dict[str, tuple[float, float, float]]


@dataclass(frozen=True)
class Table3Result:
    sizes: list[int]
    summaries: list[KernelSummary]
    points: dict[str, dict[str, list[PointResult]]]  # kernel -> strat -> pts


def _mean(xs) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def summarize(kernel: str, results: dict[str, list[PointResult]]
              ) -> KernelSummary:
    orig = results["Orig"]
    orig_l1 = _mean(p.l1_rate for p in orig)
    orig_l2 = _mean(p.l2_rate for p in orig)
    improvements: dict[str, tuple[float, float, float]] = {}
    for strat, pts in results.items():
        if strat == "Orig":
            continue
        perf = _mean(100.0 * (p.mflops - o.mflops) / o.mflops
                     for p, o in zip(pts, orig))
        l1 = orig_l1 - _mean(p.l1_rate for p in pts)
        l2 = orig_l2 - _mean(p.l2_rate for p in pts)
        improvements[strat] = (perf, l1, l2)
    return KernelSummary(kernel=kernel, orig_l1=orig_l1, orig_l2=orig_l2,
                         improvements=improvements)


def table3(kernels: tuple[str, ...] = ("JACOBI", "REDBLACK", "RESID"),
           strategies: tuple[str, ...] = PAPER_STRATEGIES,
           sizes: list[int] | None = None,
           cfg: ExperimentConfig | None = None, *,
           options: SweepOptions | None = None) -> Table3Result:
    """Table 3 sweep; execution choices travel in ``options``.

    All kernels share one checkpoint journal and one point store
    (points are keyed by kernel/strategy/size), so a resumed or warm
    ``table3`` re-simulates only what no previous run had finished.
    See :class:`~repro.experiments.options.SweepOptions` for the full
    menu (budgets, parallel workers, point cache, chunk size).
    """
    options = options or SweepOptions()
    cfg = cfg or ExperimentConfig()
    sizes = sizes or default_sizes()
    # Resolve the journal and store once so every kernel's sweep shares
    # the same open resources (and the fingerprint check runs once).
    options = replace(
        options,
        checkpoint=_resolve_journal(options.checkpoint, cfg,
                                    force=options.resume_force),
        point_cache=open_store(options.point_cache))
    points: dict[str, dict[str, list[PointResult]]] = {}
    summaries = []
    for ki, kernel in enumerate(kernels, start=1):
        log.info("table3: sweeping %s (%d/%d), %d strategies x %d sizes",
                 kernel, ki, len(kernels), 1 + len(strategies), len(sizes))
        res = sweep(kernel, ["Orig", *strategies], sizes, cfg,
                    options=options)
        points[kernel] = res
        summaries.append(summarize(kernel, res))
    return Table3Result(sizes=sizes, summaries=summaries, points=points)


def format_table3(res: Table3Result) -> str:
    strategies = list(res.summaries[0].improvements)
    headers = ["Kernel", "Orig L1%", "Orig L2%", "Metric", *strategies]
    rows = []
    for s in res.summaries:
        for mi, metric in enumerate(("% perf", "L1 pp", "L2 pp")):
            rows.append([
                s.kernel if mi == 0 else "",
                f"{s.orig_l1:.1f}" if mi == 0 else "",
                f"{s.orig_l2:.1f}" if mi == 0 else "",
                metric,
                *(f"{s.improvements[t][mi]:+.1f}" for t in strategies),
            ])
    title = (f"Table 3: average improvements over Orig, "
             f"N = {res.sizes[0]}..{res.sizes[-1]} "
             f"({len(res.sizes)} sizes, NK = interior planes per config)")
    out = format_table(headers, rows, title=title)
    note = provenance_note(p for k in res.points.values()
                           for series in k.values() for p in series)
    return out + "\n" + note if note else out
