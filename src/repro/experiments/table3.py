"""Table 3: average performance and miss-rate improvements, N = 200..400.

Improvement conventions follow Section 4.3 exactly:

* ``% perf`` — mean over problem sizes of the per-size percentage MFlops
  improvement over Orig;
* ``L1/L2 miss rate`` — the *difference* of average miss rates in
  percentage points ("a drop in the average miss rate from 10 to 8 is an
  improvement of 2%, not 20%").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, default_sizes
from repro.experiments.report import format_table, provenance_note
from repro.experiments.runner import PointResult, sweep
from repro.experiments.transforms_table import PAPER_STRATEGIES

__all__ = ["KernelSummary", "Table3Result", "table3", "format_table3"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class KernelSummary:
    """One kernel's Table 3 block."""

    kernel: str
    orig_l1: float
    orig_l2: float
    # per strategy: (perf %, L1 pp, L2 pp)
    improvements: dict[str, tuple[float, float, float]]


@dataclass(frozen=True)
class Table3Result:
    sizes: list[int]
    summaries: list[KernelSummary]
    points: dict[str, dict[str, list[PointResult]]]  # kernel -> strat -> pts


def _mean(xs) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def summarize(kernel: str, results: dict[str, list[PointResult]]
              ) -> KernelSummary:
    orig = results["Orig"]
    orig_l1 = _mean(p.l1_rate for p in orig)
    orig_l2 = _mean(p.l2_rate for p in orig)
    improvements: dict[str, tuple[float, float, float]] = {}
    for strat, pts in results.items():
        if strat == "Orig":
            continue
        perf = _mean(100.0 * (p.mflops - o.mflops) / o.mflops
                     for p, o in zip(pts, orig))
        l1 = orig_l1 - _mean(p.l1_rate for p in pts)
        l2 = orig_l2 - _mean(p.l2_rate for p in pts)
        improvements[strat] = (perf, l1, l2)
    return KernelSummary(kernel=kernel, orig_l1=orig_l1, orig_l2=orig_l2,
                         improvements=improvements)


def table3(kernels: tuple[str, ...] = ("JACOBI", "REDBLACK", "RESID"),
           strategies: tuple[str, ...] = PAPER_STRATEGIES,
           sizes: list[int] | None = None,
           cfg: ExperimentConfig | None = None,
           checkpoint=None, budget=None,
           parallel: int = 1, point_timeout: float | None = None,
           resume_force: bool = False) -> Table3Result:
    """Table 3 sweep; ``checkpoint``/``budget`` enable resilient runs.

    All kernels share one checkpoint journal (points are keyed by
    kernel/strategy/size), so a resumed ``table3`` re-simulates only
    what the previous run had not finished. ``parallel``/
    ``point_timeout`` fan points out to supervised worker processes
    (see :func:`repro.experiments.runner.sweep`); ``resume_force``
    adopts a journal whose fingerprint does not match ``cfg``.
    """
    cfg = cfg or ExperimentConfig()
    sizes = sizes or default_sizes()
    if checkpoint is not None:
        from repro.experiments.runner import open_journal
        from repro.resilience import CheckpointJournal

        if not isinstance(checkpoint, CheckpointJournal):
            checkpoint = open_journal(checkpoint, cfg, force=resume_force)
    points: dict[str, dict[str, list[PointResult]]] = {}
    summaries = []
    for ki, kernel in enumerate(kernels, start=1):
        log.info("table3: sweeping %s (%d/%d), %d strategies x %d sizes",
                 kernel, ki, len(kernels), 1 + len(strategies), len(sizes))
        res = sweep(kernel, ["Orig", *strategies], sizes, cfg,
                    checkpoint=checkpoint, budget=budget,
                    parallel=parallel, point_timeout=point_timeout)
        points[kernel] = res
        summaries.append(summarize(kernel, res))
    return Table3Result(sizes=sizes, summaries=summaries, points=points)


def format_table3(res: Table3Result) -> str:
    strategies = list(res.summaries[0].improvements)
    headers = ["Kernel", "Orig L1%", "Orig L2%", "Metric", *strategies]
    rows = []
    for s in res.summaries:
        for mi, metric in enumerate(("% perf", "L1 pp", "L2 pp")):
            rows.append([
                s.kernel if mi == 0 else "",
                f"{s.orig_l1:.1f}" if mi == 0 else "",
                f"{s.orig_l2:.1f}" if mi == 0 else "",
                metric,
                *(f"{s.improvements[t][mi]:+.1f}" for t in strategies),
            ])
    title = (f"Table 3: average improvements over Orig, "
             f"N = {res.sizes[0]}..{res.sizes[-1]} "
             f"({len(res.sizes)} sizes, NK = interior planes per config)")
    out = format_table(headers, rows, title=title)
    note = provenance_note(p for k in res.points.values()
                           for series in k.values() for p in series)
    return out + "\n" + note if note else out
