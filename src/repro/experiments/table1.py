"""Table 1: non-conflicting array tiles for a 200x200xM array, 16K cache.

The paper lists the Euc3D enumeration for ``C_s = 2048`` (16K cache of
doubles) and a 200x200xM array, then selects (TI, TJ) = (22, 13) from
the TK=3 tile (24, 15). Our exact frontier reproduces the listed rows
verbatim; the only deliberate difference is that widths are capped at
the array extent (the paper's TK=1 row shows TJ=256 > DJ=200, which a
real tile could never use).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.euc3d import enumerate_array_tiles, euc3d
from repro.experiments.report import format_table
from repro.types import ArrayTile, SelectionResult

__all__ = ["Table1Result", "table1", "format_table1"]

#: (TK, TJ, TI) rows printed in the paper (TK <= 4 section).
PAPER_ROWS = (
    (1, 1, 2048), (1, 10, 200), (1, 41, 48),
    (2, 1, 960), (2, 4, 200), (2, 5, 160), (2, 15, 40),
    (3, 5, 72), (3, 11, 40), (3, 15, 24),
    (4, 4, 72), (4, 15, 16), (4, 56, 8),
)


@dataclass(frozen=True)
class Table1Result:
    tiles: list[ArrayTile]
    selected: SelectionResult


def table1(cs: int = 2048, di: int = 200, dj: int = 200,
           tk_max: int = 4, atd: int = 3) -> Table1Result:
    """Enumerate non-conflicting array tiles and run the Euc3D selection."""
    tiles = enumerate_array_tiles(cs, di, dj, range(1, tk_max + 1))
    selected = euc3d(cs, di, dj, atd=atd)
    return Table1Result(tiles=tiles, selected=selected)


def format_table1(res: Table1Result) -> str:
    rows = [(t.tk, t.tj, t.ti) for t in res.tiles]
    body = format_table(["TK", "TJ", "TI"], rows,
                        title="Table 1: non-conflicting array tiles "
                              "(200x200xM array, 16K cache)")
    sel = res.selected
    tail = (f"\nEuc3D selection (ATD=3): iteration tile "
            f"(TI, TJ) = ({sel.tile.ti}, {sel.tile.tj}) "
            f"from array tile {sel.array_tile} at cost {sel.cost:.4f}")
    return body + tail
