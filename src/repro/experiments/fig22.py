"""Figure 22: memory increase from padding (JACOBI).

For each problem size the figure reports the percentage extra memory
GcdPad and Pad allocate. Two regimes are shown, as in Section 4.5: the
experiments' ``K = 30`` (where pads on an N x N x 30 array are
relatively expensive) and the realistic ``K = N`` (cubic arrays, where
the same pads amortize to ~1% territory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gcdpad import gcdpad
from repro.core.pad import pad
from repro.experiments.config import ExperimentConfig, default_sizes
from repro.experiments.report import format_series
from repro.layout.padding import memory_overhead

__all__ = ["MemoryPoint", "Fig22Result", "fig22", "format_fig22"]


@dataclass(frozen=True)
class MemoryPoint:
    n: int
    gcdpad_pct_k30: float
    pad_pct_k30: float
    gcdpad_pct_cubic: float
    pad_pct_cubic: float


@dataclass(frozen=True)
class Fig22Result:
    points: list[MemoryPoint]
    avg_gcdpad_k30: float
    avg_pad_k30: float
    avg_gcdpad_cubic: float
    avg_pad_cubic: float


def fig22(sizes: list[int] | None = None, nk: int = 30,
          cfg: ExperimentConfig | None = None,
          mi: int = 2, mj: int = 2, atd: int = 3) -> Fig22Result:
    """Padding overhead per size, in the paper's two normalizations.

    The K=30 columns are the fractional growth of the experiments'
    N x N x 30 arrays. Because padding both lower dimensions scales
    every plane equally, that fraction is K-invariant; the paper's
    "much less for cubic arrays" comparison (14.7% -> 1.4%) therefore
    reads as the *same absolute pad volume* taken against a cubic
    array's memory, which is what the cubic columns report.
    """
    cfg = cfg or ExperimentConfig()
    sizes = sizes or default_sizes()
    pts = []
    for n in sizes:
        g = gcdpad(cfg.cs, n, n, mi=mi, mj=mj)
        p = pad(cfg.cs, n, n, mi=mi, mj=mj, atd=atd)
        g_extra = memory_overhead(n, n, nk, g.di_p, g.dj_p).extra_elements
        p_extra = memory_overhead(n, n, nk, p.di_p, p.dj_p).extra_elements
        pts.append(MemoryPoint(
            n=n,
            gcdpad_pct_k30=memory_overhead(n, n, nk, g.di_p, g.dj_p).percent,
            pad_pct_k30=memory_overhead(n, n, nk, p.di_p, p.dj_p).percent,
            gcdpad_pct_cubic=100.0 * g_extra / (n * n * n),
            pad_pct_cubic=100.0 * p_extra / (n * n * n),
        ))

    def avg(xs) -> float:
        xs = list(xs)
        return sum(xs) / len(xs)

    return Fig22Result(
        points=pts,
        avg_gcdpad_k30=avg(q.gcdpad_pct_k30 for q in pts),
        avg_pad_k30=avg(q.pad_pct_k30 for q in pts),
        avg_gcdpad_cubic=avg(q.gcdpad_pct_cubic for q in pts),
        avg_pad_cubic=avg(q.pad_pct_cubic for q in pts),
    )


def format_fig22(res: Fig22Result) -> str:
    xs = [p.n for p in res.points]
    body = format_series(
        "Figure 22: JACOBI memory increase from padding (%)",
        "N", xs,
        {
            "GcdPad(K=30)": [p.gcdpad_pct_k30 for p in res.points],
            "Pad(K=30)": [p.pad_pct_k30 for p in res.points],
            "GcdPad(K=N)": [p.gcdpad_pct_cubic for p in res.points],
            "Pad(K=N)": [p.pad_pct_cubic for p in res.points],
        })
    tail = (f"\naverages: GcdPad {res.avg_gcdpad_k30:.1f}% / "
            f"Pad {res.avg_pad_k30:.1f}% at K=30; "
            f"GcdPad {res.avg_gcdpad_cubic:.1f}% / "
            f"Pad {res.avg_pad_cubic:.1f}% for cubic arrays")
    return body + tail
