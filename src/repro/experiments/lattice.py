"""The associativity lattice: when does padding stop mattering?

The paper derives its conflict-avoidance strategies (Euc3D, GcdPad,
Pad) entirely in a direct-mapped world — the UltraSparc2's caches were
direct-mapped, so every self- and cross-interference miss they remove
is a *conflict* miss. Modern caches buy conflict tolerance with
associativity instead. This experiment puts both on one lattice:
strategy × associativity {1, 2, 4} × line size, at fixed problem size,
holding capacity constant (so tile selection — which only sees L1
capacity — picks the same tiles everywhere, and only the cache's
conflict behaviour varies across a row).

The interesting readout is the **padding gap**: the Orig miss rate
minus the best padded strategy's, per geometry. Where the gap collapses
to (near) zero, associativity already absorbs the conflicts padding
was invented to avoid — that boundary is the answer to "when does
padding stop mattering?", in the spirit of the cache-associativity-
lattices work this column of the roadmap is grounded in.

Points run through the ordinary :func:`~repro.experiments.runner.run_point`
pipeline, one :class:`~repro.experiments.config.ExperimentConfig` per
geometry, so the persistent point store caches cells across runs
(every geometry has its own config fingerprint). Checkpoint journals
are deliberately *not* used here: a journal binds to exactly one
fingerprint, and the lattice spans one per geometry.
"""

from __future__ import annotations

import csv
import io
import logging
import pathlib
from dataclasses import dataclass, replace

from repro.cache.params import CacheParams
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.options import PointPolicy, SweepOptions
from repro.experiments.report import format_table, provenance_note
from repro.experiments.runner import PointResult, open_store, run_point
from repro.obs import events
from repro.resilience.atomic import atomic_write_text
from repro.resilience.budget import PointBudget

__all__ = ["LatticeData", "run_lattice", "format_lattice",
           "lattice_to_csv", "write_lattice_csv",
           "DEFAULT_ASSOCS", "DEFAULT_LINES", "DEFAULT_STRATEGIES"]

log = logging.getLogger(__name__)

DEFAULT_ASSOCS: tuple[int, ...] = (1, 2, 4)
DEFAULT_LINES: tuple[int, ...] = (32, 64)
DEFAULT_STRATEGIES: tuple[str, ...] = ("Orig", "GcdPad", "Pad")

_CSV_COLUMNS = ("kernel", "strategy", "n", "nk", "assoc", "line_bytes",
                "l1_rate", "l2_rate", "l1_misses", "l2_misses", "refs",
                "mflops", "seconds", "degraded", "extrapolated")


@dataclass(frozen=True)
class LatticeData:
    """One kernel's strategy × associativity × line-size lattice."""

    kernel: str
    n: int
    strategies: tuple[str, ...]
    assocs: tuple[int, ...]
    line_sizes: tuple[int, ...]
    #: ``(strategy, assoc, line_bytes) -> PointResult``; insertion order
    #: is line-major then strategy-major (the sweep order).
    cells: dict[tuple[str, int, int], PointResult]

    def cell(self, strategy: str, assoc: int, line_bytes: int) -> PointResult:
        return self.cells[(strategy, assoc, line_bytes)]

    def padding_gap(self, assoc: int, line_bytes: int,
                    metric: str = "l1_rate") -> float:
        """Orig minus the best padded strategy, for one geometry.

        Positive = padding still buys something at this associativity;
        ~0 = the cache already absorbs the conflicts.
        """
        padded = [s for s in self.strategies if s != "Orig"]
        if "Orig" not in self.strategies or not padded:
            raise ConfigurationError(
                "padding_gap needs Orig plus at least one padded strategy")
        orig = getattr(self.cell("Orig", assoc, line_bytes), metric)
        best = min(getattr(self.cell(s, assoc, line_bytes), metric)
                   for s in padded)
        return orig - best


def _lattice_l1(base: CacheParams, assoc: int, line_bytes: int) -> CacheParams:
    """The lattice L1 for one cell: same capacity, new geometry."""
    if base.size_bytes % (line_bytes * assoc):
        raise ConfigurationError(
            f"L1 size {base.size_bytes} is not divisible by "
            f"{line_bytes}B lines x {assoc} ways")
    return CacheParams(size_bytes=base.size_bytes, line_bytes=line_bytes,
                       assoc=assoc, name=f"L1/{assoc}w/{line_bytes}B")


def run_lattice(kernel: str, n: int,
                strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
                assocs: tuple[int, ...] = DEFAULT_ASSOCS,
                line_sizes: tuple[int, ...] = DEFAULT_LINES,
                cfg: ExperimentConfig | None = None, *,
                options: SweepOptions | None = None) -> LatticeData:
    """Sweep the lattice for one kernel at one problem size.

    ``cfg`` supplies the base geometry (L1 capacity, L2, machine);
    every cell replaces the L1 with its lattice geometry via
    ``dataclasses.replace``, so fingerprints — and therefore point-store
    entries — are per-geometry. ``options`` carries the execution
    choices that make sense per-cell (store, budget, chunk size,
    extrapolation); ``checkpoint`` is ignored (see module docstring).
    """
    cfg = cfg or ExperimentConfig()
    options = options or SweepOptions()
    if options.checkpoint is not None:
        log.warning("lattice sweeps span one fingerprint per geometry; "
                    "ignoring --checkpoint %s", options.checkpoint)
    budget = options.budget
    if options.point_timeout is not None and budget is None:
        budget = PointBudget(wall_seconds=options.point_timeout)
    store = open_store(options.point_cache)
    policy = PointPolicy(budget=budget, store=store,
                         chunk_size=options.chunk_size,
                         extrapolate=options.extrapolate)
    cells: dict[tuple[str, int, int], PointResult] = {}
    with events.span("lattice", kernel=kernel, n=n,
                     cells=len(strategies) * len(assocs) * len(line_sizes)):
        for line in line_sizes:
            for assoc in assocs:
                cell_cfg = replace(cfg, l1=_lattice_l1(cfg.l1, assoc, line))
                for strat in strategies:
                    cells[(strat, assoc, line)] = run_point(
                        kernel, strat, n, cell_cfg, policy=policy)
    return LatticeData(kernel=kernel, n=n, strategies=tuple(strategies),
                       assocs=tuple(assocs), line_sizes=tuple(line_sizes),
                       cells=cells)


def format_lattice(data: LatticeData, metric: str = "l1_rate",
                   label: str = "L1 miss rate", *,
                   gap: bool = True) -> str:
    """Render the lattice: one table per line size, plus the gap table.

    ``gap=False`` drops the padding-gap table — it is defined for
    lower-is-better metrics (miss rates), not for MFlops.
    """
    parts = []
    for line in data.line_sizes:
        rows = []
        for strat in data.strategies:
            rows.append([strat,
                         *(getattr(data.cell(strat, a, line), metric)
                           for a in data.assocs)])
        parts.append(format_table(
            ["Strategy", *(f"{a}-way" for a in data.assocs)], rows,
            title=(f"{data.kernel} N={data.n} {label} — "
                   f"{line}B lines")))
    if gap and "Orig" in data.strategies and len(data.strategies) > 1:
        rows = [[f"{line}B",
                 *(f"{data.padding_gap(a, line, metric):.4f}"
                   for a in data.assocs)]
                for line in data.line_sizes]
        parts.append(format_table(
            ["Line", *(f"{a}-way" for a in data.assocs)], rows,
            title=f"Padding gap (Orig - best padded, {label})"))
    note = provenance_note(data.cells.values())
    if note:
        parts.append(note)
    return "\n\n".join(parts)


def _rows(data: LatticeData) -> list[list]:
    out = []
    for (strat, assoc, line), p in data.cells.items():
        out.append([p.kernel, strat, p.n, p.nk, assoc, line,
                    f"{p.l1_rate:.6f}", f"{p.l2_rate:.6f}",
                    p.l1_misses, p.l2_misses, p.refs,
                    f"{p.mflops:.6f}", f"{p.seconds:.9f}",
                    int(p.degraded), int(p.extrapolated)])
    return out


def lattice_to_csv(data: LatticeData) -> str:
    """Render the lattice as CSV (header + one row per cell)."""
    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(_CSV_COLUMNS)
    for row in _rows(data):
        w.writerow(row)
    return buf.getvalue()


def write_lattice_csv(data: LatticeData,
                      path: str | pathlib.Path) -> pathlib.Path:
    """Write the lattice CSV atomically; returns the resolved path."""
    return atomic_write_text(path, lattice_to_csv(data))
