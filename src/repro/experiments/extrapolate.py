"""Exact steady-state K-plane extrapolation.

Untiled stencil sweeps walk the grid one K plane at a time, and every
reference's byte address is *linear in K*: stepping ``k -> k + 1``
shifts the whole plane's address stream by exactly ``plane_bytes``
(the shared plane stride times the element size). Direct-mapped caches
are shift-equivariant in line space — if the resident-tag array after
plane ``k`` equals the tag array after plane ``k - p`` with every line
id advanced by ``p * plane_lines`` (and rotated through the set index
accordingly), then plane ``k + 1`` replays plane ``k - p + 1``'s
hit/miss sequence verbatim, and so on by induction. Once that
*shift-equivalence* is observed, the remaining planes' statistics
follow in closed form: the per-plane miss deltas of the last ``p``
simulated planes simply cycle.

This module drives a point's simulation plane by plane, watches for
shift-equivalence (periods 1..:data:`QMAX`), and **stops simulating**
when it fires — extrapolating the rest exactly, in integer arithmetic.
It is opt-in (``SweepOptions(extrapolate=True)`` / ``--extrapolate``)
and conservative: *every* skipped plane is still structurally verified
(same (I, J) iteration pattern as its cycle counterpart, K advancing
by one), and any violation fast-forwards the cache state by the proven
shift and resumes full simulation mid-stream. Points where the
preconditions never hold (tiled schedules, non-direct-mapped levels,
mixed plane strides, red-black's alternating parity breaking the
K-continuity at the color boundary) degrade to full simulation and
report why.

Ineligible by construction:

* **tiled schedules** — a tile spans all K planes, so there is no
  plane-periodic stream to extrapolate (``reason="tiled_schedule"``);
* **classifiers** — 3C classification must observe every access;
  skipped planes would leave the shadow caches stale, so the runner
  never combines the two (``--metrics`` wins; see ``_simulate_exact``);
* **non-direct-mapped levels** — only :class:`DirectMappedCache`
  exposes the tag-array shift primitives
  (``reason="level_not_direct_mapped"``);
* **mixed plane strides** — when arrays have different padded plane
  sizes (e.g. RESID with only some arrays padded), a K step shifts
  each array's stream by a different amount and no single tag shift
  exists (``reason="plane_stride"``; also when the common plane stride
  is not line-aligned).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyStats
from repro.trace.generator import trace_chunks

__all__ = ["ExtrapolationReport", "QMAX", "simulate_extrapolated"]

#: Largest steady-state period checked (red-black sweeps alternate
#: plane parity, so their natural period is 2; plain sweeps need 1).
QMAX = 4


@dataclass(frozen=True)
class ExtrapolationReport:
    """What the extrapolating driver actually did for one point."""

    #: True when at least one plane's statistics were extrapolated
    #: instead of simulated.
    fired: bool
    planes_simulated: int
    planes_skipped: int
    #: Steady-state period in planes (None when extrapolation never fired).
    period: int | None
    #: Why the point (fully or partially) fell back to simulation:
    #: ``tiled_schedule`` / ``classifiers`` /
    #: ``level_not_direct_mapped`` / ``plane_stride`` /
    #: ``not_plane_periodic`` / ``no_steady_state``; ``None`` when
    #: every remaining plane was extrapolated.
    reason: str | None


def _ineligibility(sel, hier: CacheHierarchy, specs) -> str | None:
    """The precondition that rules this point out, or ``None``."""
    if sel.tiled:
        return "tiled_schedule"
    if not hier.engine_support().eligible:
        # Miss classifiers must observe every access; skipped planes
        # would leave the shadow caches stale (see module docstring).
        return "classifiers"
    if not all(isinstance(l, DirectMappedCache) for l in hier.levels):
        return "level_not_direct_mapped"
    planes = {spec.plane for spec in specs.values()}
    if len(planes) != 1:
        return "plane_stride"
    plane_bytes = planes.pop() * next(iter(specs.values())).elem_bytes
    if any(plane_bytes % p.line_bytes for p in hier.params):
        return "plane_stride"
    return None


def _sig_equal(a, b) -> bool:
    """Whether two plane (I, J) iteration signatures are identical."""
    return ((a[0] is b[0] or np.array_equal(a[0], b[0]))
            and (a[1] is b[1] or np.array_equal(a[1], b[1])))


def _cum(hier: CacheHierarchy) -> tuple[int, ...]:
    """Cumulative counters as one flat tuple (exact integers)."""
    out: list[int] = []
    for lvl in hier.levels:
        out.append(lvl.stats.accesses)
        out.append(lvl.stats.misses)
    out.append(hier.reads)
    out.append(hier.writes)
    return tuple(out)


def _delta(after: tuple[int, ...], before: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(a - b for a, b in zip(after, before))


def _scaled_sum(deltas: list[tuple[int, ...]], cycles: int,
                partial: int) -> tuple[int, ...]:
    """``cycles`` full cycles of ``deltas`` plus its first ``partial``."""
    width = len(deltas[0])
    total = [0] * width
    for d in deltas:
        for i in range(width):
            total[i] += d[i] * cycles
    for d in deltas[:partial]:
        for i in range(width):
            total[i] += d[i]
    return tuple(total)


def _apply(hier: CacheHierarchy, totals: tuple[int, ...],
           d_lines: list[int], planes: int) -> None:
    """Inject extrapolated counters and fast-forward the tag state."""
    nlev = len(hier.levels)
    hier.advance_stats(
        [(totals[2 * i], totals[2 * i + 1]) for i in range(nlev)],
        reads=totals[2 * nlev], writes=totals[2 * nlev + 1])
    for lvl, d in zip(hier.levels, d_lines):
        lvl.apply_tag_shift(planes * d)


def simulate_extrapolated(kern, sel, schedule, hier: CacheHierarchy, *,
                          inter_pad: int | None = None,
                          chunk_size: int | None = None,
                          on_chunk=None
                          ) -> tuple[HierarchyStats, ExtrapolationReport]:
    """Simulate a point, extrapolating steady-state planes exactly.

    Drop-in equal to ``hier.run(kern.trace(...))`` — the returned
    :class:`HierarchyStats` is **bit-for-bit identical** whether
    extrapolation fires, partially fires, or never does (the
    differential tests in ``tests/test_extrapolate.py`` hold it to
    that) — but skips the simulation of planes whose statistics are
    already determined by shift-equivalence. ``on_chunk`` keeps its
    ``CacheHierarchy.run`` meaning (budget deadlines, fault ticks) and
    only fires for chunks actually simulated.
    """
    specs = kern.specs(sel.di_p, sel.dj_p, inter_pad_cache=inter_pad)
    reason = _ineligibility(sel, hier, specs)
    if reason is not None:
        stats = hier.run(kern.trace(sel, schedule, inter_pad_cache=inter_pad,
                                    chunk_size=chunk_size, structured=True),
                         on_chunk=on_chunk)
        return stats, ExtrapolationReport(
            fired=False, planes_simulated=-1, planes_skipped=0,
            period=None, reason=reason)

    refs = kern.refs(specs)
    spec0 = next(iter(specs.values()))
    plane_bytes = spec0.plane * spec0.elem_bytes
    d_lines = [plane_bytes // p.line_bytes for p in hier.params]

    def simulate_plane(chunk) -> None:
        hier.run(trace_chunks(iter([chunk]), refs,
                              max_addresses=chunk_size, structured=True),
                 on_chunk=on_chunk)

    def snapshot_tags() -> list[np.ndarray]:
        return [lvl.tags_snapshot() for lvl in hier.levels]

    # Detection history, valid within one K-continuous run of planes.
    tag_hist: deque = deque(maxlen=QMAX + 1)   # state after each plane
    delta_hist: deque = deque(maxlen=QMAX)     # per-plane counter deltas
    sig_hist: deque = deque(maxlen=QMAX + 1)   # per-plane (I, J) arrays
    tag_hist.append(snapshot_tags())
    prev_cum = _cum(hier)
    prev_k: int | None = None

    planes_simulated = 0
    planes_skipped = 0
    reason = None

    # Skip-phase state (set when shift-equivalence fires).
    skipping = False
    period = 0
    cycle_sigs: list = []
    cycle_deltas: list = []
    skipped_run = 0
    next_k = 0

    def reset_history() -> None:
        tag_hist.clear()
        delta_hist.clear()
        sig_hist.clear()
        tag_hist.append(snapshot_tags())

    def fast_forward(m: int) -> None:
        if m:
            totals = _scaled_sum(cycle_deltas, m // period, m % period)
            _apply(hier, totals, d_lines, m)

    chunks = iter(kern.iter_chunks(schedule))
    for i, j, k in chunks:
        if i.size == 0:
            continue
        kval = int(k[0])
        plane_like = bool((k == kval).all())
        sig = (i, j)

        if skipping:
            if (plane_like and kval == next_k
                    and _sig_equal(sig, cycle_sigs[skipped_run % period])):
                skipped_run += 1
                planes_skipped += 1
                next_k += 1
                continue
            # The stream stopped repeating (red-black color boundary,
            # end-of-pass wrap, ...): commit what was proven, restore
            # the exact state by shifting, and resume simulation.
            fast_forward(skipped_run)
            skipping = False
            skipped_run = 0
            reset_history()
            prev_cum = _cum(hier)
            prev_k = None

        if not plane_like:
            # Not a plane-periodic stream after all: simulate this
            # chunk and everything behind it, detection off for good.
            reason = "not_plane_periodic"
            simulate_plane((i, j, k))
            for rest in chunks:
                simulate_plane(rest)
            break

        if prev_k is not None and kval != prev_k + 1:
            # K discontinuity: earlier snapshots no longer sit one
            # plane-shift apart, so detection restarts here.
            reset_history()

        simulate_plane((i, j, k))
        planes_simulated += 1
        cum = _cum(hier)
        delta_hist.append(_delta(cum, prev_cum))
        prev_cum = cum
        tag_hist.append(snapshot_tags())
        sig_hist.append(sig)
        prev_k = kval

        for p in range(1, min(QMAX, len(delta_hist), len(tag_hist) - 1)
                       + 1):
            # The fire condition needs the *signature* periodic too
            # (same iteration pattern one period back), else a tag
            # coincidence between structurally different planes could
            # arm a cycle whose very first skip check then fails.
            if len(sig_hist) <= p or not _sig_equal(sig_hist[-1],
                                                    sig_hist[-1 - p]):
                continue
            base = tag_hist[-1 - p]
            if all(lvl.tags_equal_shifted(b, p * d)
                   for lvl, b, d in zip(hier.levels, base, d_lines)):
                skipping = True
                period = p
                cycle_sigs = list(sig_hist)[-p:]
                cycle_deltas = list(delta_hist)[-p:]
                skipped_run = 0
                next_k = kval + 1
                break

    if skipping:
        # Ran off the end of the trace while extrapolating: commit.
        fast_forward(skipped_run)

    fired = planes_skipped > 0
    if reason is None and not skipping:
        # The final segment was simulated to the end without reaching
        # (or after falling out of) steady state.
        reason = "no_steady_state"
    return hier.stats(), ExtrapolationReport(
        fired=fired, planes_simulated=planes_simulated,
        planes_skipped=planes_skipped,
        period=period if fired else None,
        reason=reason)
