"""Figures 14-21: per-size miss-rate and MFlops series.

Each kernel gets two figures (miss rates, MFlops), each figure three
graphs comparing strategy groups against Orig — exactly the paper's
arrangement:

* graph 1: Tile and Euc3D (irregular, conflict-prone);
* graph 2: GcdPad and Pad (stable);
* graph 3: GcdPadNT (padding without tiling).

Figures 20-21 are the same series for RESID at N = 400..700 on the
450 MHz machine preset.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, default_sizes
from repro.experiments.options import SweepOptions
from repro.experiments.report import format_series, provenance_note
from repro.experiments.runner import PointResult, sweep
from repro.perfmodel.machine import ULTRASPARC2_450

__all__ = ["FigureData", "figure_series", "large_resid_series",
           "format_figure", "GRAPH_GROUPS"]

log = logging.getLogger(__name__)

GRAPH_GROUPS: tuple[tuple[str, ...], ...] = (
    ("Orig", "Tile", "Euc3D"),
    ("Orig", "GcdPad", "Pad"),
    ("Orig", "GcdPadNT"),
)


@dataclass(frozen=True)
class FigureData:
    """All series needed for one kernel's pair of figures."""

    kernel: str
    sizes: list[int]
    points: dict[str, list[PointResult]]  # strategy -> per-size results

    def series(self, metric: str) -> dict[str, list[float]]:
        return {s: [getattr(p, metric) for p in pts]
                for s, pts in self.points.items()}


def figure_series(kernel: str, sizes: list[int] | None = None,
                  cfg: ExperimentConfig | None = None, *,
                  options: SweepOptions | None = None) -> FigureData:
    """Miss-rate and MFlops series for Figures 14-19.

    Execution choices (checkpointing, budgets, parallel workers, the
    persistent point cache, trace chunk size) travel in ``options`` —
    see :class:`~repro.experiments.options.SweepOptions`.
    """
    cfg = cfg or ExperimentConfig()
    sizes = sizes or default_sizes()
    strategies = ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"]
    log.info("figures: sweeping %s, %d strategies x %d sizes",
             kernel, len(strategies), len(sizes))
    return FigureData(kernel=kernel, sizes=sizes,
                      points=sweep(kernel, strategies, sizes, cfg,
                                   options=options))


def large_resid_series(sizes: list[int] | None = None,
                       cfg: ExperimentConfig | None = None, *,
                       options: SweepOptions | None = None) -> FigureData:
    """Figures 20-21: RESID at N = 400..700, 450 MHz preset."""
    if cfg is None:
        cfg = ExperimentConfig(machine=ULTRASPARC2_450)
    sizes = sizes or default_sizes(400, 700)
    return figure_series("RESID", sizes, cfg, options=options)


def format_figure(data: FigureData, metric: str, label: str) -> str:
    """Render one figure's three graphs as aligned series tables."""
    all_series = data.series(metric)
    parts = []
    for gi, group in enumerate(GRAPH_GROUPS, start=1):
        sel = {s: all_series[s] for s in group if s in all_series}
        parts.append(format_series(
            f"{data.kernel} {label} — graph {gi} ({' vs '.join(group)})",
            "N", data.sizes, sel))
    note = provenance_note(p for pts in data.points.values() for p in pts)
    if note:
        parts.append(note)
    return "\n\n".join(parts)
