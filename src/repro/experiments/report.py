"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "provenance_note"]


def provenance_note(points: Iterable) -> str:
    """One-line provenance footnote when results mix exact and modeled.

    Resilient sweeps degrade over-budget points to the analytical miss
    model (``PointResult.degraded``); any table or series built from
    such points must say so — an empty string means everything shown is
    an exact simulation.
    """
    points = list(points)
    degraded = [p for p in points if getattr(p, "degraded", False)]
    if not degraded:
        return ""
    worst = ", ".join(sorted({f"{p.kernel}/{p.strategy}@N={p.n}"
                              for p in degraded})[:5])
    more = len(degraded) - min(len(degraded), 5)
    suffix = f" (+{more} more)" if more > 0 else ""
    return (f"[degraded] {len(degraded)}/{len(points)} points are analytic-"
            f"model estimates, not exact simulations: {worst}{suffix}")


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table; floats rendered to two decimals."""
    def cell(x) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    srows = [[cell(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def format_series(title: str, xlabel: str, xs: Sequence[int],
                  series: dict[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render several aligned series (one row per x) as a table."""
    headers = [xlabel] + [f"{name}{unit}" for name in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)
