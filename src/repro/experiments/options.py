"""Typed option bundles for the experiment harness.

Three PRs of resilience and parallelism features grew ``sweep`` /
``table3`` / ``figure_series`` a sprawl of keyword arguments
(``checkpoint=``, ``budget=``, ``parallel=``, ``point_timeout=``,
``resume_force=`` — and this PR would have added two more). This
module collapses the sprawl into two frozen dataclasses:

* :class:`SweepOptions` — everything a *sweep* may carry: resilience
  (checkpoint journal, per-point budget), parallelism (worker count,
  hard point timeout), and performance (persistent point cache, trace
  chunk size). Passed as one ``options=`` argument.
* :class:`PointPolicy` — everything *one point's* execution may carry;
  the single ``run_point(..., policy=)`` entry point replaced the old
  ``run_point`` / ``run_point_resilient`` / ``run_point_analytic``
  trio.

Both are frozen (hashable, safe to share across threads and to ship to
worker processes) and validate in ``__post_init__`` so a bad value
fails at construction, where the typo is, not deep inside a sweep.

The legacy keyword forms (and their shims) completed their deprecation
cycle and are **removed**: passing ``checkpoint=`` etc. to ``sweep`` /
``table3`` / ``figure_series`` now raises :class:`TypeError` like any
other unknown keyword.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.resilience import PointBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.store import PointStore
    from repro.resilience import CheckpointJournal

__all__ = ["SweepOptions", "PointPolicy"]


@dataclass(frozen=True)
class SweepOptions:
    """Execution options for one sweep (``sweep``/``table3``/``figures``).

    ==================  ====================================================
    field               meaning
    ==================  ====================================================
    ``checkpoint``      journal path or open ``CheckpointJournal``;
                        completed points are recorded and skipped on resume
    ``budget``          per-point :class:`~repro.resilience.PointBudget`;
                        over-budget points degrade to the analytic model
    ``parallel``        worker-process count (1 = serial)
    ``point_timeout``   hard per-point wall clock, seconds (SIGKILL under
                        ``parallel``; an in-process wall budget serially)
    ``resume_force``    adopt a checkpoint whose config fingerprint does
                        not match this run
    ``point_cache``     persistent point store — a directory path or an
                        open :class:`~repro.perf.store.PointStore`; points
                        are reused across processes and across runs
    ``chunk_size``      addresses per simulated trace chunk (``None`` =
                        the generator default, ``0`` = unbounded)
    ``extrapolate``     exact steady-state K-plane extrapolation
                        (:mod:`repro.experiments.extrapolate`): stop
                        simulating once plane statistics provably
                        repeat; identical results, recorded per point
    ``trace_form``      ``"auto"`` (default) / ``"runs"`` / ``"flat"``:
                        how traces reach the simulator. ``auto`` picks
                        the run-compressed form whenever the point's
                        simulation can consume it (identical
                        statistics); forcing a value pins the form for
                        benchmarking and differential tests
    ==================  ====================================================
    """

    checkpoint: "str | os.PathLike | CheckpointJournal | None" = None
    budget: PointBudget | None = None
    parallel: int = 1
    point_timeout: float | None = None
    resume_force: bool = False
    point_cache: "str | os.PathLike | PointStore | None" = None
    chunk_size: int | None = None
    extrapolate: bool = False
    trace_form: str = "auto"

    def __post_init__(self) -> None:
        if self.parallel < 1:
            raise ConfigurationError(
                f"parallel must be >= 1, got {self.parallel}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ConfigurationError(
                f"point_timeout must be positive, got {self.point_timeout}")
        _check_chunk_size(self.chunk_size)
        _check_trace_form(self.trace_form, self.extrapolate)

    @property
    def plain(self) -> bool:
        """No per-point machinery: the memoized fast path applies.

        ``extrapolate`` routes around the memo too — its results carry
        a provenance flag (``PointResult.extrapolated``) that a memo
        shared with non-extrapolating callers would misreport. A forced
        ``trace_form`` likewise routes around the memo: both forms are
        bit-for-bit identical, but benchmarks force a form precisely to
        *measure* it, and a memo hit would silently measure nothing.
        """
        return (self.checkpoint is None and self.budget is None
                and self.point_cache is None and self.chunk_size is None
                and not self.extrapolate and self.trace_form == "auto")

    def point_policy(self, journal=None, store=None) -> "PointPolicy":
        """The per-point policy this sweep implies (serial path).

        ``journal``/``store`` are the *opened* resources resolved from
        :attr:`checkpoint`/:attr:`point_cache` by the runner.
        """
        return PointPolicy(budget=self.budget, journal=journal,
                           store=store, chunk_size=self.chunk_size,
                           extrapolate=self.extrapolate,
                           trace_form=self.trace_form)


@dataclass(frozen=True)
class PointPolicy:
    """How one point may be computed (``run_point(..., policy=)``).

    ==============  ========================================================
    field           meaning
    ==============  ========================================================
    ``analytic``    skip exact simulation; return the analytical miss-model
                    estimate (``degraded=True``)
    ``budget``      retry/degrade bounds for the exact simulation
    ``journal``     open checkpoint journal consulted before simulating and
                    recorded to after
    ``store``       open persistent point store, likewise
    ``chunk_size``  addresses per trace chunk (``None`` = default bound,
                    ``0`` = unbounded); affects memory/timing only — the
                    simulated statistics are bit-for-bit independent of it
    ``extrapolate`` exact steady-state K-plane extrapolation: stop
                    simulating once plane statistics provably repeat
                    (identical results; ``PointResult.extrapolated``
                    records whether it fired)
    ``trace_form``  ``"auto"`` / ``"runs"`` / ``"flat"`` — how the trace
                    reaches the simulator (identical statistics; see
                    :class:`SweepOptions`)
    ==============  ========================================================

    The default policy (all fields default) is the memoized exact fast
    path. Any non-default field routes around the in-process memo: the
    journal and store are then the caches of record.
    """

    analytic: bool = False
    budget: PointBudget | None = None
    journal: "CheckpointJournal | None" = None
    store: "PointStore | None" = None
    chunk_size: int | None = None
    extrapolate: bool = False
    trace_form: str = "auto"

    def __post_init__(self) -> None:
        _check_chunk_size(self.chunk_size)
        _check_trace_form(self.trace_form, self.extrapolate)
        if self.analytic and (self.budget is not None
                              or self.chunk_size is not None
                              or self.extrapolate
                              or self.trace_form != "auto"):
            raise ConfigurationError(
                "an analytic policy simulates nothing: budget/chunk_size/"
                "extrapolate/trace_form do not apply")

    @property
    def plain(self) -> bool:
        """True when the memoized exact fast path may serve this point."""
        return (not self.analytic and self.budget is None
                and self.journal is None and self.store is None
                and self.chunk_size is None and not self.extrapolate
                and self.trace_form == "auto")


def _check_chunk_size(chunk_size: int | None) -> None:
    if chunk_size is not None and chunk_size < 0:
        raise ConfigurationError(
            f"chunk_size must be >= 0 (0 = unbounded), got {chunk_size}")


def _check_trace_form(trace_form: str, extrapolate: bool) -> None:
    from repro.trace.generator import TRACE_FORMS

    valid = ("auto",) + TRACE_FORMS
    if trace_form not in valid:
        raise ConfigurationError(
            f"unknown trace_form {trace_form!r}; valid: {valid}")
    if extrapolate and trace_form == "runs":
        raise ConfigurationError(
            "extrapolate consumes per-plane flat chunks; "
            "trace_form='runs' cannot be forced with it "
            "(use 'auto' or 'flat')")
