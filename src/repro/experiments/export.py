"""CSV export of experiment results (for external plotting tools).

The benchmark harness renders ASCII tables; anyone regenerating the
paper's figures graphically wants machine-readable series instead.
These writers emit plain CSV with a stable column set.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable

from repro.errors import ExperimentError
from repro.experiments.runner import PointResult

__all__ = ["points_to_csv", "write_points_csv", "read_points_csv"]

_COLUMNS = ("kernel", "strategy", "n", "nk", "l1_rate", "l2_rate",
            "l1_misses", "l2_misses", "refs", "mflops", "seconds",
            "ti", "tj", "di_p", "dj_p")


def _row(p: PointResult) -> list:
    ti, tj = p.tile if p.tile else ("", "")
    return [p.kernel, p.strategy, p.n, p.nk,
            f"{p.l1_rate:.6f}", f"{p.l2_rate:.6f}",
            p.l1_misses, p.l2_misses, p.refs,
            f"{p.mflops:.6f}", f"{p.seconds:.9f}",
            ti, tj, p.di_p, p.dj_p]


def points_to_csv(points: Iterable[PointResult]) -> str:
    """Render results as a CSV string (header + one row per point)."""
    import io

    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(_COLUMNS)
    for p in points:
        w.writerow(_row(p))
    return buf.getvalue()


def write_points_csv(points: Iterable[PointResult],
                     path: str | pathlib.Path) -> pathlib.Path:
    """Write results to ``path``; returns the resolved path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(points_to_csv(points))
    return path


def read_points_csv(path: str | pathlib.Path) -> list[dict]:
    """Read a CSV written by :func:`write_points_csv` back into dicts.

    Numeric columns are parsed; empty tile columns become ``None``.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no such results file: {path}")
    out: list[dict] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            parsed: dict = dict(row)
            for k in ("n", "nk", "l1_misses", "l2_misses", "refs",
                      "di_p", "dj_p"):
                parsed[k] = int(row[k])
            for k in ("l1_rate", "l2_rate", "mflops", "seconds"):
                parsed[k] = float(row[k])
            for k in ("ti", "tj"):
                parsed[k] = int(row[k]) if row[k] else None
            out.append(parsed)
    return out
