"""CSV export of experiment results (for external plotting tools).

The benchmark harness renders ASCII tables; anyone regenerating the
paper's figures graphically wants machine-readable series instead.
These writers emit plain CSV with a stable column set, including the
``degraded`` provenance flag so exact simulations and analytic-model
fallbacks stay distinguishable downstream.

Writes are atomic (temp file + ``os.replace``): an interrupted run
never leaves a half-written artifact. Reads are defensive: a missing
file, missing columns, or malformed cells raise
:class:`~repro.errors.ExperimentError` naming the offending path and
row instead of leaking ``ValueError``/``KeyError`` tracebacks.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable

from repro.errors import ExperimentError
from repro.experiments.runner import PointResult
from repro.resilience.atomic import atomic_write_text

__all__ = ["points_to_csv", "write_points_csv", "read_points_csv"]

_COLUMNS = ("kernel", "strategy", "n", "nk", "l1_rate", "l2_rate",
            "l1_misses", "l2_misses", "refs", "mflops", "seconds",
            "ti", "tj", "di_p", "dj_p", "degraded", "extrapolated")

#: Provenance flags: optional on read (older files predate them), and
#: an absent column means False for every row.
_FLAG_COLUMNS = ("degraded", "extrapolated")

_INT_COLUMNS = ("n", "nk", "l1_misses", "l2_misses", "refs", "di_p", "dj_p")
_FLOAT_COLUMNS = ("l1_rate", "l2_rate", "mflops", "seconds")
_TILE_COLUMNS = ("ti", "tj")


def _row(p: PointResult) -> list:
    ti, tj = p.tile if p.tile else ("", "")
    return [p.kernel, p.strategy, p.n, p.nk,
            f"{p.l1_rate:.6f}", f"{p.l2_rate:.6f}",
            p.l1_misses, p.l2_misses, p.refs,
            f"{p.mflops:.6f}", f"{p.seconds:.9f}",
            ti, tj, p.di_p, p.dj_p,
            int(p.degraded), int(p.extrapolated)]


def points_to_csv(points: Iterable[PointResult]) -> str:
    """Render results as a CSV string (header + one row per point)."""
    import io

    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(_COLUMNS)
    for p in points:
        w.writerow(_row(p))
    return buf.getvalue()


def write_points_csv(points: Iterable[PointResult],
                     path: str | pathlib.Path) -> pathlib.Path:
    """Write results to ``path`` atomically; returns the resolved path."""
    return atomic_write_text(path, points_to_csv(points))


def _cell(row: dict, key: str, path: pathlib.Path, lineno: int) -> str:
    value = row.get(key)
    if value is None:
        raise ExperimentError(
            f"{path}: row {lineno} is missing column {key!r}")
    return value


def read_points_csv(path: str | pathlib.Path) -> list[dict]:
    """Read a CSV written by :func:`write_points_csv` back into dicts.

    Numeric columns are parsed; empty tile columns become ``None``;
    ``degraded``/``extrapolated`` become bools (files from before the
    columns existed read as ``False``). Malformed input raises
    :class:`~repro.errors.ExperimentError` with the path and row.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no such results file: {path}")
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        required = set(_COLUMNS) - set(_FLAG_COLUMNS)
        missing = required - set(header)
        if missing:
            raise ExperimentError(
                f"{path}: not a points CSV — missing column(s) "
                f"{', '.join(sorted(missing))}")
        out: list[dict] = []
        for lineno, row in enumerate(reader, start=2):
            parsed: dict = dict(row)
            try:
                for k in _INT_COLUMNS:
                    parsed[k] = int(_cell(row, k, path, lineno))
                for k in _FLOAT_COLUMNS:
                    parsed[k] = float(_cell(row, k, path, lineno))
                for k in _TILE_COLUMNS:
                    raw = _cell(row, k, path, lineno)
                    parsed[k] = int(raw) if raw else None
                for k in _FLAG_COLUMNS:
                    raw = row.get(k, "")
                    parsed[k] = (raw or "0").strip().lower() in (
                        "1", "true", "yes")
            except ValueError as exc:
                raise ExperimentError(
                    f"{path}: row {lineno} has a malformed value: {exc}"
                ) from None
            out.append(parsed)
    return out
