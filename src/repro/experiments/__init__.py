"""Experiment harness: regenerate every table and figure of the paper.

Per-experiment entry points (see DESIGN.md's index):

* :mod:`~repro.experiments.table1` — non-conflicting tile enumeration;
* :mod:`~repro.experiments.table3` — average improvements, 3 kernels x
  5 transformations;
* :mod:`~repro.experiments.figures` — per-size miss-rate and MFlops
  series (Figures 14-19), plus the large-size RESID study (20-21);
* :mod:`~repro.experiments.fig22` — padding memory overhead;
* :mod:`~repro.experiments.mgrid_app` — MGRID application speedup;
* :mod:`~repro.experiments.section1` — capacity-threshold verification.

Everything funnels through :func:`~repro.experiments.runner.run_point`,
which simulates one (kernel, strategy, N) configuration end to end.
Results are memoized per process so benches can share sweeps.
"""

from repro.experiments.config import ExperimentConfig, default_sizes
from repro.experiments.options import PointPolicy, SweepOptions
from repro.experiments.runner import (
    PointResult,
    open_journal,
    open_store,
    run_point,
    sweep,
)
from repro.experiments.transforms_table import TRANSFORMS, PAPER_STRATEGIES
from repro.resilience import PointBudget

__all__ = [
    "ExperimentConfig",
    "default_sizes",
    "PointBudget",
    "PointPolicy",
    "PointResult",
    "SweepOptions",
    "open_journal",
    "open_store",
    "run_point",
    "sweep",
    "TRANSFORMS",
    "PAPER_STRATEGIES",
]
