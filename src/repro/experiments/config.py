"""Experiment configuration: cache geometry, problem sizes, resolution.

The paper's setup (Section 4.2): 16K/2M direct-mapped caches, problem
sizes ``N x N x 30`` with N in 200..400 (400..700 for the large-size
RESID study), float64 elements, write-around caches.

Resolution control: full paper-density sweeps simulate billions of
references; by default the harness uses a coarse N grid and a shallower
K extent, which preserves every qualitative shape (miss rates reach
steady state within a few planes). Set ``REPRO_FULL=1`` for
paper-density runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.cache.params import CacheParams, ULTRASPARC2_L1, ULTRASPARC2_L2
from repro.perfmodel.machine import MachineModel, ULTRASPARC2_360

__all__ = ["ExperimentConfig", "default_sizes", "full_resolution"]


def full_resolution() -> bool:
    """Whether paper-density sweeps were requested via ``REPRO_FULL=1``."""
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


def default_sizes(lo: int = 200, hi: int = 400,
                  full: bool | None = None) -> list[int]:
    """Problem sizes to sweep; paper density is step 10."""
    if full is None:
        full = full_resolution()
    step = 10 if full else 50
    return list(range(lo, hi + 1, step))


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything :func:`repro.experiments.runner.run_point` needs."""

    l1: CacheParams = ULTRASPARC2_L1
    l2: CacheParams = ULTRASPARC2_L2
    machine: MachineModel = ULTRASPARC2_360
    elem_bytes: int = 8
    nk: int = 30
    #: Count write references in miss-rate denominators (the trace always
    #: carries them; write-around keeps them out of the caches).
    include_writes: bool = True
    #: Apply Section 3.5 inter-variable padding to multi-array kernels
    #: (off by default: the paper's RESID experiments *tolerate*
    #: cross-interference; see the ablation bench).
    inter_pad: bool = False

    def __post_init__(self) -> None:
        if full_resolution():
            return
        # Coarse default: a shallower K extent cuts simulation cost ~3x
        # while leaving per-plane steady-state behaviour intact. 11 (odd)
        # keeps multi-array base distances benign, like the paper's
        # DK=30 does: for GcdPad geometries the plane is 512 mod 2048,
        # so an even DK would alias U and V bases exactly (512*12 = 0
        # mod 2048) — an accident of depth, not a property of padding.
        object.__setattr__(self, "nk", min(self.nk, 11))

    @property
    def cs(self) -> int:
        """L1 capacity in elements — the C_s all selection algorithms use."""
        return self.l1.capacity_elements(self.elem_bytes)

    @property
    def levels(self) -> list[CacheParams]:
        return [self.l1, self.l2]
