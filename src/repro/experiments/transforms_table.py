"""Table 2: the transformation taxonomy, as an executable registry."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransformRow", "TRANSFORMS", "PAPER_STRATEGIES"]


@dataclass(frozen=True)
class TransformRow:
    """One row of the paper's Table 2."""

    name: str
    tile_size: str
    padding: str
    tiled: bool
    padded: bool


TRANSFORMS: dict[str, TransformRow] = {
    "Orig": TransformRow("Orig", "(No tiling)", "No", False, False),
    "Tile": TransformRow("Tile", "Square", "No", True, False),
    "Euc3D": TransformRow("Euc3D", "Non-conflicting", "No", True, False),
    "GcdPad": TransformRow("GcdPad", "Fixed non-conflicting", "GCD", True, True),
    "Pad": TransformRow("Pad", "Variable non-conflicting", "< GCD", True, True),
    "GcdPadNT": TransformRow("GcdPadNT", "(No tiling)", "GCD", False, True),
}

#: The five optimized strategies Table 3 reports (Orig is the baseline).
PAPER_STRATEGIES = ("Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT")


def format_table2() -> str:
    lines = [f"{'Program':10s} {'Tile Size':26s} {'Padding':8s}",
             "-" * 46]
    rows = [TRANSFORMS["Orig"]] + [TRANSFORMS[s] for s in PAPER_STRATEGIES]
    for r in rows:
        lines.append(f"{r.name:10s} {r.tile_size:26s} {r.padding:8s}")
    return "\n".join(lines)
